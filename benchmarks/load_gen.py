"""Concurrent-user load generator for the HTTP serving front-end.

Drives a :class:`~repro.serving.http.server.ChartSearchServer` the way an
operator's dashboard would be graded: a **ramp** (users joining one at a
time), a **sustained** measured phase (steady concurrency, mixed repeated /
fresh queries), and a **deliberate overload** burst sized past the server's
admission bound.  The numbers that matter land in ``BENCH_http.json`` at the
repository root:

* sustained-phase p50/p95/p99 latency, throughput and error rate;
* the overload phase's status breakdown — the acceptance property is that
  saturation degrades to fast **429** rejections with ``Retry-After``,
  never to hangs, timeouts or 5xx;
* a parity check that one ranking fetched over HTTP is byte-identical to
  the in-process :meth:`~repro.serving.SearchService.query` answer
  (self-hosted runs only, where both sides are reachable).

Stdlib only (``http.client`` + threads), like the server itself.

Usage::

    # Self-contained: boots a demo server in-process, loads it, writes JSON
    PYTHONPATH=src python benchmarks/load_gen.py --self-host

    # CI smoke: seconds, not minutes; nonzero exit on any 5xx/timeout
    PYTHONPATH=src python benchmarks/load_gen.py --self-host --smoke --fail-on-5xx

    # Against an already-running server (see `python -m repro.serving.http`)
    PYTHONPATH=src python benchmarks/load_gen.py --url http://127.0.0.1:8080

As with every multi-process/multi-thread number in this repository:
``os.cpu_count()`` and a ``single_cpu`` flag are recorded, and a caveat is
attached on 1-CPU hosts — there the latencies measure queueing behind one
core, not parallel serving capacity.
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

import numpy as np

from provenance import stamp_results

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_http.json"

SINGLE_CPU_CAVEAT = (
    "recorded on a 1-CPU host: concurrent-user latencies measure queueing "
    "behind one core, not parallel serving capacity"
)

#: Per-request socket guard: anything slower than this is recorded as a
#: timeout, and timeouts fail the run's acceptance property (no hangs).
REQUEST_TIMEOUT_SECONDS = 30.0


# --------------------------------------------------------------------------- #
# Result accounting
# --------------------------------------------------------------------------- #
@dataclass
class PhaseRecorder:
    """Thread-safe (status, latency) accumulator for one load phase."""

    statuses: List[int] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)
    timeouts: int = 0
    transport_errors: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def observe(self, status: int, seconds: float) -> None:
        with self._lock:
            self.statuses.append(status)
            self.latencies.append(seconds)

    def observe_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def observe_transport_error(self) -> None:
        with self._lock:
            self.transport_errors += 1

    def summary(self) -> Dict:
        counts: Dict[str, int] = {}
        for status in self.statuses:
            key = str(status)
            counts[key] = counts.get(key, 0) + 1
        total = len(self.statuses) + self.timeouts + self.transport_errors
        server_5xx = sum(n for s, n in counts.items() if s.startswith("5"))
        failures = server_5xx + self.timeouts + self.transport_errors
        out = {
            "requests": total,
            "status_counts": dict(sorted(counts.items())),
            "rejected_429": counts.get("429", 0),
            "server_5xx": server_5xx,
            "timeouts": self.timeouts,
            "transport_errors": self.transport_errors,
            "error_rate": (failures / total) if total else 0.0,
        }
        if self.latencies:
            lat = np.asarray(self.latencies, dtype=np.float64) * 1e3
            p50, p95, p99 = np.percentile(lat, [50.0, 95.0, 99.0])
            out["latency_ms"] = {
                "mean": float(lat.mean()),
                "p50": float(p50),
                "p95": float(p95),
                "p99": float(p99),
                "max": float(lat.max()),
            }
        return out


# --------------------------------------------------------------------------- #
# A keep-alive client worker
# --------------------------------------------------------------------------- #
class Client:
    """One simulated user: a persistent connection issuing POST /query."""

    def __init__(self, host: str, port: int) -> None:
        self._host, self._port = host, port
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self._host, self._port, timeout=REQUEST_TIMEOUT_SECONDS
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def query(
        self, payload: Dict, recorder: PhaseRecorder
    ) -> Optional[Tuple[int, Dict]]:
        body = json.dumps(payload).encode("utf-8")
        start = time.perf_counter()
        try:
            conn = self._connection()
            conn.request(
                "POST",
                "/query",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            raw = response.read()
            status = response.status
            if response.getheader("Connection") == "close":
                self.close()  # the server refused keep-alive (429/503/413)
        except TimeoutError:
            self.close()
            recorder.observe_timeout()
            return None
        except OSError:
            self.close()
            recorder.observe_transport_error()
            return None
        recorder.observe(status, time.perf_counter() - start)
        return status, (json.loads(raw) if raw else {})


# --------------------------------------------------------------------------- #
# Query payload mix
# --------------------------------------------------------------------------- #
def _fresh_payload(tag: int, points: int = 64) -> Dict:
    """A deterministic chart no other request has asked about.

    Distinct payloads are cache misses by construction (the service cache is
    keyed by chart content), so the overload phase keeps the service busy
    instead of being absorbed by the LRU cache.
    """
    x = np.arange(1, points + 1, dtype=np.float64)
    y = np.sin(x * (0.05 + 0.013 * (tag % 97))) * (1.0 + (tag % 11)) + 0.01 * tag
    return {
        "series": [{"x": x.tolist(), "y": y.tolist(), "name": f"load_{tag}"}]
    }


def _sustained_payload(corpus_payloads: List[Dict], user: int, i: int) -> Dict:
    """The sustained mix: mostly repeated corpus charts (warm cache, the
    realistic steady state), every fourth request a fresh one (cold path)."""
    if i % 4 == 3:
        return _fresh_payload(user * 100_000 + i)
    return corpus_payloads[(user + i) % len(corpus_payloads)]


# --------------------------------------------------------------------------- #
# Load phases
# --------------------------------------------------------------------------- #
def run_ramp(
    host: str,
    port: int,
    corpus_payloads: List[Dict],
    users: int,
    spawn_interval: float,
    requests_per_user: int,
    k: int,
) -> PhaseRecorder:
    recorder = PhaseRecorder()

    def user_loop(user: int) -> None:
        client = Client(host, port)
        try:
            for i in range(requests_per_user):
                payload = _sustained_payload(corpus_payloads, user, i)
                client.query({"chart": payload, "k": k}, recorder)
        finally:
            client.close()

    threads = []
    for user in range(users):
        thread = threading.Thread(target=user_loop, args=(user,), daemon=True)
        thread.start()
        threads.append(thread)
        time.sleep(spawn_interval)
    for thread in threads:
        thread.join()
    return recorder


def run_sustained(
    host: str,
    port: int,
    corpus_payloads: List[Dict],
    users: int,
    duration: float,
    k: int,
) -> Tuple[PhaseRecorder, float]:
    recorder = PhaseRecorder()
    stop = time.perf_counter() + duration

    def user_loop(user: int) -> None:
        client = Client(host, port)
        i = 0
        try:
            while time.perf_counter() < stop:
                payload = _sustained_payload(corpus_payloads, user, i)
                result = client.query({"chart": payload, "k": k}, recorder)
                if result is not None and result[0] == 429:
                    time.sleep(0.02)  # honour the backpressure, then retry
                i += 1
        finally:
            client.close()

    start = time.perf_counter()
    threads = [
        threading.Thread(target=user_loop, args=(user,), daemon=True)
        for user in range(users)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return recorder, time.perf_counter() - start


def run_overload(
    host: str,
    port: int,
    burst_users: int,
    requests_per_user: int,
    k: int,
) -> PhaseRecorder:
    """Every request is a distinct uncached chart and nobody backs off:
    strictly more concurrency than ``max_inflight`` can admit.  The server
    must shed the excess as immediate 429s — the recorder's timeout and 5xx
    counters are the failure signal."""
    recorder = PhaseRecorder()
    barrier = threading.Barrier(burst_users)

    def user_loop(user: int) -> None:
        client = Client(host, port)
        try:
            barrier.wait(timeout=30.0)
            for i in range(requests_per_user):
                tag = 10_000_000 + user * 1000 + i
                client.query({"chart": _fresh_payload(tag), "k": k}, recorder)
        finally:
            client.close()

    threads = [
        threading.Thread(target=user_loop, args=(user,), daemon=True)
        for user in range(burst_users)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return recorder


# --------------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------------- #
def _check_parity(server, service, corpus_payloads: List[Dict], k: int) -> Dict:
    """One ranking over the wire vs. the same query in-process, compared
    with ``==`` — the JSON float round-trip is exact by construction."""
    client = Client(server.host, server.port)
    try:
        result = client.query(
            {"chart": corpus_payloads[0], "k": k}, PhaseRecorder()
        )
    finally:
        client.close()
    if result is None or result[0] != 200:
        return {"checked": False, "reason": f"query failed: {result}"}
    http_ranking = result[1]["ranking"]
    from repro.serving.http.protocol import parse_chart_payload

    chart = parse_chart_payload(
        corpus_payloads[0], service.model.config.chart_spec
    )
    expected = service.query(chart, k)
    in_process = [[tid, float(score)] for tid, score in expected.ranking]
    return {
        "checked": True,
        "byte_identical": http_ranking == in_process,
        "k": k,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="load-test the repro HTTP serving front-end"
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", help="base URL of a running server")
    target.add_argument(
        "--self-host",
        action="store_true",
        help="boot a demo server in-process and load that",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long profile for CI")
    parser.add_argument("--users", type=int, default=None,
                        help="sustained-phase concurrent users")
    parser.add_argument("--duration", type=float, default=None,
                        help="sustained-phase seconds")
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--tables", type=int, default=40,
                        help="self-hosted corpus size")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--max-inflight", type=int, default=4,
                        help="self-hosted admission bound (kept small so the "
                        "overload phase actually saturates it)")
    parser.add_argument("--output", type=Path, default=BENCH_JSON)
    parser.add_argument(
        "--fail-on-5xx",
        action="store_true",
        help="exit nonzero on any 5xx, timeout or transport error",
    )
    args = parser.parse_args(argv)

    # Sustained concurrency sits at the admission bound (a steady state at
    # capacity, not past it); only the overload burst exceeds it, which is
    # where the 429 behaviour is demonstrated.
    default_users = args.max_inflight if args.self_host else 8
    if args.smoke:
        users = args.users or min(4, default_users)
        duration = args.duration or 2.0
        ramp_requests, burst_users, burst_requests = 3, 4 * users, 10
    else:
        users = args.users or default_users
        duration = args.duration or 8.0
        ramp_requests, burst_users, burst_requests = 8, 4 * users, 25

    server = service = None
    if args.self_host:
        from repro.serving.http.demo import (
            build_demo_service,
            demo_query_payloads,
        )
        from repro.serving.http.server import (
            ChartSearchServer,
            HTTPServingConfig,
        )

        print(f"booting demo server over {args.tables} tables...")
        service, records = build_demo_service(
            num_tables=args.tables, seed=args.seed
        )
        server = ChartSearchServer(
            service,
            HTTPServingConfig(
                port=0, max_inflight=args.max_inflight, close_service=False
            ),
        ).start()
        host, port = server.host, server.port
        corpus_payloads = demo_query_payloads(records, limit=8)
        server_info = {
            "self_hosted": True,
            "num_tables": service.num_tables,
            "max_inflight": args.max_inflight,
        }
    else:
        parts = urlsplit(args.url)
        host, port = parts.hostname, parts.port or 80
        # Remote servers are assumed demo-shaped (same --tables/--seed):
        # rebuild the corpus client-side to derive realistic query charts.
        from repro.serving.http.demo import demo_query_payloads, demo_records

        corpus_payloads = demo_query_payloads(
            demo_records(args.tables, args.seed), limit=8
        )
        server_info = {"self_hosted": False, "url": args.url}

    try:
        print(f"ramp: {users} users joining one per 100ms...")
        ramp = run_ramp(
            host, port, corpus_payloads, users,
            spawn_interval=0.1, requests_per_user=ramp_requests, k=args.k,
        )
        print(f"sustained: {users} users for {duration:.0f}s...")
        sustained, measured = run_sustained(
            host, port, corpus_payloads, users, duration, k=args.k
        )
        print(
            f"overload: {burst_users} users x {burst_requests} uncached "
            "queries, no backoff..."
        )
        overload = run_overload(
            host, port, burst_users, burst_requests, k=args.k
        )
        parity = (
            _check_parity(server, service, corpus_payloads, args.k)
            if server is not None
            else {"checked": False, "reason": "remote server; no in-process reference"}
        )
    finally:
        if server is not None:
            server.close()

    cpus = os.cpu_count() or 1
    sustained_summary = sustained.summary()
    sustained_summary["duration_seconds"] = measured
    sustained_summary["users"] = users
    sustained_summary["throughput_rps"] = (
        sustained_summary["requests"] / measured if measured else 0.0
    )
    overload_summary = overload.summary()
    overload_summary["burst_users"] = burst_users

    report = {
        "benchmark": "http_serving_load",
        "scale": "smoke" if args.smoke else "default",
        "os_cpu_count": cpus,
        "single_cpu": cpus <= 1,
        "server": server_info,
        "ramp": {"users": users, "spawn_interval_seconds": 0.1, **ramp.summary()},
        "sustained": sustained_summary,
        "overload": overload_summary,
        "parity": parity,
    }
    if cpus <= 1:
        report["caveat"] = SINGLE_CPU_CAVEAT

    args.output.write_text(json.dumps(stamp_results(report), indent=1) + "\n")
    print(f"wrote {args.output}")
    lat = sustained_summary.get("latency_ms", {})
    print(
        f"sustained: {sustained_summary['requests']} requests, "
        f"{sustained_summary['throughput_rps']:.1f} rps, "
        f"p50 {lat.get('p50', float('nan')):.1f}ms / "
        f"p95 {lat.get('p95', float('nan')):.1f}ms / "
        f"p99 {lat.get('p99', float('nan')):.1f}ms, "
        f"error rate {sustained_summary['error_rate']:.4f}"
    )
    print(
        f"overload: {overload_summary['requests']} requests -> "
        f"{overload_summary['rejected_429']} x 429, "
        f"{overload_summary['server_5xx']} x 5xx, "
        f"{overload_summary['timeouts']} timeouts"
    )
    if parity.get("checked"):
        print(f"parity (HTTP vs in-process): byte_identical={parity['byte_identical']}")

    failures = 0
    for phase_name, phase in (("sustained", sustained_summary),
                              ("ramp", report["ramp"]),
                              ("overload", overload_summary)):
        bad = phase["server_5xx"] + phase["timeouts"] + phase["transport_errors"]
        if bad:
            print(f"FAIL: {phase_name} phase saw {bad} 5xx/timeout/transport errors")
            failures += bad
    if parity.get("checked") and not parity.get("byte_identical"):
        print("FAIL: HTTP ranking diverged from the in-process ranking")
        failures += 1
    if args.fail_on_5xx and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
