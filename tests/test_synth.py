"""Tests for ``repro.data.synth`` — the deterministic scale corpus.

The scale harness (``benchmarks/test_scale_sweep.py``) compares artifacts
produced at different corpus sizes, so the property that carries the whole
module is O(1) per-table determinism: ``synth_table(i, config)`` must be a
pure function of ``(config.seed, i)`` — never of ``num_tables``, generation
order, or how many tables were generated before it.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    SynthConfig,
    clustered_embeddings,
    synth_query_charts,
    synth_query_indices,
    synth_table,
    synth_tables,
)


def _table_bytes(table):
    return [column.values.tobytes() for column in table.columns]


class TestSynthDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(
        index=st.integers(min_value=0, max_value=500),
        seed=st.integers(min_value=0, max_value=10),
        small=st.integers(min_value=1, max_value=50),
        large=st.integers(min_value=1000, max_value=100_000),
    )
    def test_table_is_pure_function_of_seed_and_index(
        self, index, seed, small, large
    ):
        """Corpus size must not leak into any table's content."""
        in_small = synth_table(index, SynthConfig(num_tables=small, seed=seed))
        in_large = synth_table(index, SynthConfig(num_tables=large, seed=seed))
        assert in_small.table_id == in_large.table_id
        assert in_small.column_names == in_large.column_names
        assert _table_bytes(in_small) == _table_bytes(in_large)

    def test_repeated_generation_is_identical(self):
        config = SynthConfig(num_tables=20, seed=3)
        first = [_table_bytes(t) for t in synth_tables(config)]
        second = [_table_bytes(t) for t in synth_tables(config)]
        assert first == second

    def test_seed_changes_the_corpus(self):
        base = synth_table(0, SynthConfig(num_tables=1, seed=0))
        other = synth_table(0, SynthConfig(num_tables=1, seed=1))
        assert _table_bytes(base) != _table_bytes(other)

    def test_streaming_matches_random_access(self):
        config = SynthConfig(num_tables=12, seed=5)
        streamed = list(synth_tables(config))
        for index, table in enumerate(streamed):
            assert _table_bytes(table) == _table_bytes(synth_table(index, config))


class TestSynthShape:
    def test_table_ids_unique_and_stable_format(self):
        config = SynthConfig(num_tables=30)
        ids = [t.table_id for t in synth_tables(config)]
        assert len(set(ids)) == 30
        assert ids[7] == "synth_000007"

    @settings(max_examples=25, deadline=None)
    @given(index=st.integers(min_value=0, max_value=200))
    def test_column_and_row_bounds_hold(self, index):
        config = SynthConfig(
            num_tables=1, num_rows=40, min_columns=2, max_columns=4
        )
        table = synth_table(index, config)
        assert 2 <= table.num_columns <= 4
        assert table.num_rows == 40
        assert all(np.isfinite(column.values).all() for column in table.columns)

    def test_clusters_share_shape_but_not_scale(self):
        """Same-cluster tables correlate strongly; the value scales differ
        across clusters (the interval tree needs spread ranges to prune)."""
        config = SynthConfig(
            num_tables=8, num_clusters=4, min_columns=1, max_columns=1
        )
        tables = list(synth_tables(config))

        def normalised(table):
            values = table.columns[0].values
            centred = values - values.mean()
            return centred / np.linalg.norm(centred)

        same_cluster = float(normalised(tables[0]) @ normalised(tables[4]))
        assert same_cluster > 0.9
        spans = set()
        for table in tables[:4]:  # one table per cluster
            values = table.columns[0].values
            spans.add(round(float(values.max() - values.min()), 1))
        assert len(spans) >= 3  # value_scales actually spread the ranges

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="num_tables"):
            SynthConfig(num_tables=-1)
        with pytest.raises(ValueError, match="num_rows"):
            SynthConfig(num_tables=1, num_rows=1)
        with pytest.raises(ValueError, match="min_columns"):
            SynthConfig(num_tables=1, min_columns=3, max_columns=2)
        with pytest.raises(ValueError, match="num_clusters"):
            SynthConfig(num_tables=1, num_clusters=0)
        with pytest.raises(ValueError, match="value_scales"):
            SynthConfig(num_tables=1, value_scales=())
        with pytest.raises(ValueError, match="index"):
            synth_table(-1, SynthConfig(num_tables=1))


class TestSynthQueries:
    def test_query_indices_cover_the_range_without_duplicates(self):
        config = SynthConfig(num_tables=100)
        indices = synth_query_indices(config, 10)
        assert indices == sorted(set(indices))
        assert indices[0] == 0 and indices[-1] == 99
        assert synth_query_indices(config, 0) == []
        assert synth_query_indices(replace(config, num_tables=0), 10) == []
        # More charts than tables degrades to one chart per table.
        assert synth_query_indices(replace(config, num_tables=3), 10) == [0, 1, 2]

    def test_query_charts_point_back_at_their_source_table(self):
        config = SynthConfig(num_tables=40, seed=2)
        pairs = synth_query_charts(config, 5)
        assert len(pairs) == 5
        for index, chart in pairs:
            table = synth_table(index, config)
            assert chart.source_table_id == table.table_id
            assert chart.num_lines == table.num_columns


class TestClusteredEmbeddings:
    def test_shapes_labels_and_determinism(self):
        vectors, labels = clustered_embeddings(60, 8, num_clusters=6, seed=1)
        again, _ = clustered_embeddings(60, 8, num_clusters=6, seed=1)
        assert vectors.shape == (60, 8)
        assert labels.shape == (60,)
        assert set(labels) == set(range(6))
        np.testing.assert_array_equal(vectors, again)
        different, _ = clustered_embeddings(60, 8, num_clusters=6, seed=2)
        assert not np.array_equal(vectors, different)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_vectors"):
            clustered_embeddings(-1, 8)
        with pytest.raises(ValueError, match="num_clusters"):
            clustered_embeddings(10, 8, num_clusters=0)
