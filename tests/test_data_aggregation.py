"""Tests and properties for the windowed aggregation operators (Sec. II / V)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    AGGREGATION_OPERATORS,
    AggregationSpec,
    aggregate_values,
    aggregated_length,
    operator_index,
    sample_aggregation_spec,
    window_bucket,
)
from repro.data.augmentation import AugmentationConfig, augment_table, reverse_table
from repro.data import Column, Table


class TestAggregationSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            AggregationSpec("median", 5)
        with pytest.raises(ValueError):
            AggregationSpec("avg", 0)

    def test_identity_detection(self):
        assert AggregationSpec("none").is_identity
        assert AggregationSpec("avg", 1).is_identity
        assert not AggregationSpec("avg", 5).is_identity

    def test_expert_indices_are_distinct(self):
        indices = {operator_index(op) for op in AGGREGATION_OPERATORS}
        assert len(indices) == len(AGGREGATION_OPERATORS)
        assert AggregationSpec("none").expert_index == len(AGGREGATION_OPERATORS)
        assert AggregationSpec("avg", 1).expert_index == len(AGGREGATION_OPERATORS)

    def test_describe(self):
        assert AggregationSpec("sum", 7).describe() == "sum(window=7)"
        assert AggregationSpec("none").describe() == "none"

    def test_unknown_operator_index(self):
        with pytest.raises(ValueError):
            operator_index("median")


class TestAggregateValues:
    def test_known_values(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        np.testing.assert_allclose(
            aggregate_values(values, AggregationSpec("avg", 2)), [1.5, 3.5, 5.0]
        )
        np.testing.assert_allclose(
            aggregate_values(values, AggregationSpec("sum", 2)), [3.0, 7.0, 5.0]
        )
        np.testing.assert_allclose(
            aggregate_values(values, AggregationSpec("max", 2)), [2.0, 4.0, 5.0]
        )
        np.testing.assert_allclose(
            aggregate_values(values, AggregationSpec("min", 2)), [1.0, 3.0, 5.0]
        )

    def test_identity_returns_copy(self):
        values = np.array([1.0, 2.0])
        out = aggregate_values(values, AggregationSpec("none"))
        np.testing.assert_allclose(out, values)
        out[0] = 99.0
        assert values[0] == 1.0

    def test_window_larger_than_series(self):
        values = np.array([1.0, 5.0, 3.0])
        out = aggregate_values(values, AggregationSpec("max", 10))
        np.testing.assert_allclose(out, [5.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            aggregate_values(np.ones((2, 2)), AggregationSpec("avg", 2))

    @given(
        st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=200),
        st.sampled_from(list(AGGREGATION_OPERATORS)),
        st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_length_and_bounds_properties(self, values, operator, window):
        values = np.asarray(values, dtype=np.float64)
        spec = AggregationSpec(operator, window)
        out = aggregate_values(values, spec)
        assert out.shape[0] == aggregated_length(values.shape[0], spec)
        # min/max/avg stay within the original value range; sum of a window of
        # length w is bounded by w * extreme.
        if operator in ("min", "max", "avg"):
            assert out.min() >= values.min() - 1e-9
            assert out.max() <= values.max() + 1e-9
        else:
            bound = window * max(abs(values.min()), abs(values.max())) + 1e-9
            assert np.all(np.abs(out) <= bound)

    @given(st.integers(min_value=20, max_value=2000), st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_sampled_spec_respects_paper_bounds(self, num_rows, seed):
        spec = sample_aggregation_spec(num_rows, np.random.default_rng(seed))
        assert spec.operator in AGGREGATION_OPERATORS
        assert 2 <= spec.window <= min(100, max(num_rows // 4, 2))


class TestWindowBucket:
    def test_bucket_edges(self):
        assert window_bucket(5) == "0-10"
        assert window_bucket(10) == "0-10"
        assert window_bucket(25) == "20-40"
        assert window_bucket(55) == "40-60"
        assert window_bucket(70) == "60-80"
        assert window_bucket(95) == "80-100"


class TestAugmentation:
    def test_reverse_preserves_shape(self, simple_table):
        reversed_table = reverse_table(simple_table)
        assert reversed_table.num_rows == simple_table.num_rows
        np.testing.assert_allclose(
            reversed_table["wave"].values, simple_table["wave"].values[::-1]
        )

    def test_augment_table_variants(self, simple_table, rng):
        variants = augment_table(simple_table, rng=rng)
        kinds = {v.table_id.split("::")[1][:4] for v in variants}
        assert any(k.startswith("rev") for k in kinds)
        assert any(k.startswith("part") for k in kinds)
        assert any(k.startswith("ds") for k in kinds)
        for variant in variants:
            assert set(variant.column_names) == set(simple_table.column_names)

    def test_augmentation_can_be_disabled(self, simple_table, rng):
        config = AugmentationConfig(reverse=False, partition=False, down_sample=False)
        assert augment_table(simple_table, config=config, rng=rng) == []
        assert config.enabled() == []
