"""Tests for ticks, the rasteriser, and the LineChartSeg dataset builder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.charts import (
    ChartSpec,
    LineChartSegDataset,
    MASK_AXIS,
    MASK_LINE,
    MASK_TICK_LABEL,
    MASK_Y_TICK,
    build_linechartseg,
    format_tick,
    match_text,
    nice_ticks,
    render_chart_for_table,
    render_line_chart,
    render_text,
    underlying_data_from_table,
)
from repro.data import AggregationSpec, AugmentationConfig
from repro.charts.canvas import Canvas


class TestNiceTicks:
    def test_simple_range(self):
        ticks = nice_ticks(0.0, 10.0, 5)
        assert ticks[0] <= 0.0 and ticks[-1] >= 10.0
        steps = np.diff(ticks)
        np.testing.assert_allclose(steps, steps[0])

    def test_degenerate_range(self):
        ticks = nice_ticks(2.0, 2.0, 4)
        assert ticks[0] <= 2.0 <= ticks[-1]

    def test_requires_two_ticks(self):
        with pytest.raises(ValueError):
            nice_ticks(0.0, 1.0, 1)

    @given(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        st.floats(min_value=1e-3, max_value=1e4, allow_nan=False),
        st.integers(min_value=2, max_value=9),
    )
    @settings(max_examples=100, deadline=None)
    def test_always_covers_range_and_terminates(self, low, span, count):
        high = low + span
        ticks = nice_ticks(low, high, count)
        assert ticks[0] <= low + 1e-9
        assert ticks[-1] >= high - 1e-9
        assert len(ticks) >= 2
        assert all(b > a for a, b in zip(ticks, ticks[1:]))


class TestTickLabels:
    @pytest.mark.parametrize("value", [0, 3, -7, 12.5, 0.25, 1234, -0.03, 150000.0])
    def test_render_and_match_roundtrip(self, value):
        label = format_tick(float(value))
        decoded = match_text(render_text(label))
        assert float(decoded) == pytest.approx(float(label), rel=1e-6)

    def test_render_unknown_character_raises(self):
        with pytest.raises(KeyError):
            render_text("x")

    def test_match_empty(self):
        assert match_text(np.zeros((5, 0))) == ""


class TestCanvas:
    def test_out_of_bounds_pixels_are_clipped(self):
        canvas = Canvas(10, 10)
        canvas.draw_segment(-5, -5, 20, 20, class_id=1, instance="line")
        assert canvas.image.max() == 1.0
        assert canvas.image.shape == (10, 10)

    def test_polyline_validation(self):
        canvas = Canvas(10, 10)
        with pytest.raises(ValueError):
            canvas.draw_polyline(np.array([1, 2]), np.array([1, 2, 3]))

    def test_instance_masks_track_pixels(self):
        canvas = Canvas(20, 20)
        canvas.draw_horizontal_line(5, 2, 8, class_id=2, instance="tick")
        assert canvas.instance_masks["tick"].sum() == 7
        assert (canvas.class_mask == 2).sum() == 7


class TestChartSpec:
    def test_geometry(self):
        spec = ChartSpec()
        assert spec.plot_width == spec.width - spec.margin_left - spec.margin_right
        assert spec.plot_height == spec.height - spec.margin_top - spec.margin_bottom

    def test_validation(self):
        with pytest.raises(ValueError):
            ChartSpec(width=20, height=20, margin_left=18)
        with pytest.raises(ValueError):
            ChartSpec(num_y_ticks=1)


class TestRasterizer:
    def test_chart_contains_all_elements(self, simple_chart):
        mask = simple_chart.class_mask
        assert (mask == MASK_LINE).any()
        assert (mask == MASK_AXIS).any()
        assert (mask == MASK_Y_TICK).any()
        assert (mask == MASK_TICK_LABEL).any()
        assert simple_chart.num_lines == 2
        assert simple_chart.image.shape == (simple_chart.spec.height, simple_chart.spec.width)

    def test_axis_range_covers_data(self, simple_chart):
        low, high = simple_chart.axis_range
        data_low, data_high = simple_chart.underlying.y_range
        assert low <= data_low and high >= data_high

    def test_lines_stay_in_plot_area(self, simple_chart):
        spec = simple_chart.spec
        for mask in simple_chart.line_masks:
            rows, cols = np.nonzero(mask)
            assert rows.min() >= spec.plot_top - 1
            assert rows.max() <= spec.plot_bottom + 1
            assert cols.min() >= spec.plot_left
            assert cols.max() <= spec.plot_right

    def test_aggregated_chart_has_fewer_x_positions(self, simple_table):
        plain = render_chart_for_table(simple_table, ["wave"], x_column="time")
        aggregated = render_chart_for_table(
            simple_table, ["wave"], x_column="time", aggregation=AggregationSpec("avg", 8)
        )
        assert len(aggregated.underlying[0]) < len(plain.underlying[0])
        assert aggregated.aggregation is not None

    def test_underlying_data_from_table_aggregation(self, simple_table):
        data = underlying_data_from_table(
            simple_table, ["rising"], aggregation=AggregationSpec("sum", 10)
        )
        assert len(data[0]) == int(np.ceil(simple_table.num_rows / 10))

    def test_single_point_lines_rejected_upstream(self, simple_table):
        data = simple_table.to_underlying_data(["rising"])
        chart = render_line_chart(data)
        assert chart.num_lines == 1


class TestLineChartSeg:
    def test_build_dataset(self, small_records):
        dataset = build_linechartseg(small_records[:4], max_examples=10)
        assert len(dataset) > len(small_records[:4])  # augmentation adds examples
        histogram = dataset.class_histogram()
        assert MASK_LINE in histogram and histogram[MASK_LINE] > 0
        example = dataset[0]
        assert example.image.shape == example.class_mask.shape

    def test_augmentation_disabled_gives_one_example_per_record(self, small_records):
        config = AugmentationConfig(reverse=False, partition=False, down_sample=False)
        dataset = build_linechartseg(small_records[:3], augmentation=config)
        assert len(dataset) == 3

    def test_split(self, small_records):
        dataset = build_linechartseg(small_records[:4], max_examples=12)
        train, val = dataset.split(train_fraction=0.75, seed=0)
        assert len(train) + len(val) == len(dataset)
        with pytest.raises(ValueError):
            dataset.split(train_fraction=1.5)
