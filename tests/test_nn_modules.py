"""Tests for layers, attention, transformer, optimizers, losses, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    CosineAnnealingLR,
    CrossAttention,
    Dropout,
    Embedding,
    GradientClipper,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadSelfAttention,
    Parameter,
    PositionalEmbedding,
    SGD,
    Sequential,
    StepLR,
    Tensor,
    TransformerEncoder,
    balanced_binary_cross_entropy,
    binary_cross_entropy,
    contrastive_cosine_loss,
    cross_entropy,
    default_dtype,
    load_state_dict,
    mse_loss,
    save_state_dict,
    scaled_dot_product_attention,
)

from conftest import dtype_tol


class TestModuleMechanics:
    def test_parameter_registration_and_count(self):
        layer = Linear(4, 3)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert layer.num_parameters() == 4 * 3 + 3

    def test_nested_modules(self):
        model = Sequential(Linear(4, 8), Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert "layer0.weight" in names and "layer1.bias" in names

    def test_train_eval_propagates(self):
        model = Sequential(Dropout(0.5), Linear(3, 3))
        model.eval()
        assert not model[0].training
        model.train()
        assert model[0].training

    def test_state_dict_roundtrip(self):
        model = Sequential(Linear(4, 4), LayerNorm(4))
        state = model.state_dict()
        clone = Sequential(Linear(4, 4), LayerNorm(4))
        clone.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_state_dict_strict_mismatch(self):
        model = Linear(3, 3)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((3, 3))})
        with pytest.raises(ValueError):
            model.load_state_dict(
                {"weight": np.zeros((2, 2)), "bias": np.zeros(3)}
            )

    def test_module_list(self):
        modules = ModuleList([Linear(2, 2), Linear(2, 2)])
        assert len(modules) == 2
        assert len(list(modules.parameters())) == 4
        with pytest.raises(RuntimeError):
            modules(Tensor(np.ones(2)))

    def test_zero_grad(self):
        layer = Linear(3, 2)
        out = layer(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_linear_shapes_and_validation(self):
        layer = Linear(5, 2)
        assert layer(Tensor(np.ones((7, 5)))).shape == (7, 2)
        assert layer(Tensor(np.ones((3, 4, 5)))).shape == (3, 4, 2)
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_layernorm_normalizes(self):
        norm = LayerNorm(8)
        out = norm(Tensor(np.random.default_rng(0).standard_normal((5, 8)) * 10 + 3))
        values = out.numpy()
        np.testing.assert_allclose(values.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(values.std(axis=-1), 1.0, atol=1e-2)

    def test_dropout_training_vs_eval(self):
        dropout = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 10)))
        out_train = dropout(x).numpy()
        assert (out_train == 0).any()
        dropout.eval()
        np.testing.assert_allclose(dropout(x).numpy(), np.ones((100, 10)))
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_mlp_shapes_and_activation_validation(self):
        mlp = MLP(6, [8, 8], 2, activation="relu")
        assert mlp(Tensor(np.ones((3, 6)))).shape == (3, 2)
        with pytest.raises(ValueError):
            MLP(4, [4], 2, activation="nonsense")

    def test_embedding_lookup_and_bounds(self):
        emb = Embedding(10, 4)
        assert emb([1, 2, 3]).shape == (3, 4)
        with pytest.raises(IndexError):
            emb([10])

    def test_positional_embedding(self):
        pos = PositionalEmbedding(8, 4)
        x = Tensor(np.zeros((5, 4)))
        out = pos(x).numpy()
        np.testing.assert_allclose(out, pos.weight.data[:5])
        with pytest.raises(ValueError):
            pos(Tensor(np.zeros((9, 4))))


class TestAttention:
    def test_scaled_dot_product_weights_sum_to_one(self):
        rng = np.random.default_rng(0)
        q = Tensor(rng.standard_normal((4, 8)))
        k = Tensor(rng.standard_normal((6, 8)))
        v = Tensor(rng.standard_normal((6, 8)))
        out, weights = scaled_dot_product_attention(q, k, v)
        assert out.shape == (4, 8)
        np.testing.assert_allclose(
            weights.numpy().sum(axis=-1), np.ones(4), atol=dtype_tol(1e-9, 1e-6)
        )

    def test_attention_mask(self):
        q = Tensor(np.ones((2, 4)))
        k = Tensor(np.ones((3, 4)))
        v = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        mask = np.array([[True, False, False], [True, True, False]])
        _, weights = scaled_dot_product_attention(q, k, v, mask=mask)
        w = weights.numpy()
        assert w[0, 1] < 1e-6 and w[0, 2] < 1e-6
        assert w[1, 2] < 1e-6

    def test_multihead_self_attention_shapes(self):
        attn = MultiHeadSelfAttention(embed_dim=16, num_heads=4)
        assert attn(Tensor(np.random.default_rng(0).standard_normal((5, 16)))).shape == (5, 16)
        assert attn(Tensor(np.random.default_rng(0).standard_normal((2, 5, 16)))).shape == (2, 5, 16)
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(embed_dim=10, num_heads=3)

    def test_cross_attention_shapes(self):
        cross = CrossAttention(embed_dim=8)
        out, weights = cross(
            Tensor(np.random.default_rng(0).standard_normal((3, 8))),
            Tensor(np.random.default_rng(1).standard_normal((5, 8))),
        )
        assert out.shape == (3, 8)
        assert weights.shape == (3, 5)

    def test_attention_is_differentiable(self):
        attn = MultiHeadSelfAttention(embed_dim=8, num_heads=2)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None and x.grad.shape == (4, 8)


class TestTransformer:
    def test_encoder_shapes_single_and_batched(self):
        encoder = TransformerEncoder(embed_dim=16, num_heads=2, num_layers=2, max_positions=10)
        assert encoder(Tensor(np.zeros((7, 16)))).shape == (7, 16)
        assert encoder(Tensor(np.zeros((3, 7, 16)))).shape == (3, 7, 16)

    def test_encoder_gradients_reach_input(self):
        rng = np.random.default_rng(0)
        encoder = TransformerEncoder(
            embed_dim=8, num_heads=2, num_layers=1, max_positions=6, rng=rng
        )
        x = Tensor(rng.standard_normal((4, 8)), requires_grad=True)
        out = encoder(x)
        # A plain .sum() loss is (analytically) constant in x here: the final
        # LayerNorm's output sums to its bias along the feature axis at init,
        # so the input gradient would be pure floating-point residue.  A
        # squared loss breaks that invariance and gives a real gradient.
        (out * out).sum().backward()
        assert x.grad is not None and x.grad.shape == (4, 8)
        assert np.abs(x.grad).sum() > 1e-6

    def test_batch_independence(self):
        """Batched encoding must equal per-item encoding (no cross-batch attention)."""
        encoder = TransformerEncoder(embed_dim=8, num_heads=2, num_layers=1, max_positions=5)
        rng = np.random.default_rng(0)
        batch = rng.standard_normal((3, 5, 8))
        batched = encoder(Tensor(batch)).numpy()
        for i in range(3):
            single = encoder(Tensor(batch[i])).numpy()
            np.testing.assert_allclose(batched[i], single, atol=1e-10)


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0, 0.5])
        param = Parameter(np.zeros(3))
        return param, target

    def test_sgd_converges(self):
        param, target = self._quadratic_problem()
        opt = SGD([param], lr=0.1, momentum=0.5)
        for _ in range(200):
            loss = ((Tensor(param.data) - target) ** 2).sum()
            param.grad = 2 * (param.data - target)
            opt.step()
            opt.zero_grad()
        np.testing.assert_allclose(param.data, target, atol=1e-3)

    def test_adam_converges(self):
        param, target = self._quadratic_problem()
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            param.grad = 2 * (param.data - target)
            opt.step()
            opt.zero_grad()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_optimizer_validation(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=-1.0)

    def test_gradient_clipper(self):
        param = Parameter(np.zeros(4))
        param.grad = np.ones(4) * 10.0
        clipper = GradientClipper(max_norm=1.0)
        norm = clipper.clip([param])
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-6)

    def test_lr_schedules(self):
        param = Parameter(np.zeros(2))
        opt = Adam([param], lr=1.0)
        step = StepLR(opt, step_size=2, gamma=0.5)
        for _ in range(4):
            step.step()
        assert opt.lr == pytest.approx(0.25)
        opt2 = Adam([param], lr=1.0)
        cosine = CosineAnnealingLR(opt2, total_epochs=10)
        for _ in range(10):
            cosine.step()
        assert opt2.lr == pytest.approx(0.0, abs=1e-9)


class TestLosses:
    def test_bce_perfect_prediction_is_small(self):
        loss = binary_cross_entropy(Tensor(np.array([0.999, 0.001])), np.array([1.0, 0.0]))
        assert loss.item() < 0.01

    def test_balanced_bce_handles_imbalance(self):
        predictions = Tensor(np.array([0.9, 0.1, 0.1, 0.1, 0.1]))
        labels = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        balanced = balanced_binary_cross_entropy(predictions, labels).item()
        # Constant 0.5 prediction gives -2*log(0.5) ≈ 1.386 under the balanced loss.
        constant = balanced_binary_cross_entropy(
            Tensor(np.full(5, 0.5)), labels
        ).item()
        assert balanced < constant

    def test_balanced_bce_matches_eq2_by_hand(self):
        preds = np.array([0.8, 0.3, 0.6])
        labels = np.array([1.0, 0.0, 0.0])
        expected = -(np.log(0.8) / 1 + (np.log(0.7) + np.log(0.4)) / 2)
        got = balanced_binary_cross_entropy(Tensor(preds), labels).item()
        assert got == pytest.approx(expected, rel=1e-6)

    def test_mse(self):
        assert mse_loss(Tensor(np.array([1.0, 2.0])), np.array([1.0, 4.0])).item() == pytest.approx(2.0)

    def test_cross_entropy_prefers_correct_class(self):
        good = cross_entropy(Tensor(np.array([[5.0, 0.0], [0.0, 5.0]])), [0, 1]).item()
        bad = cross_entropy(Tensor(np.array([[0.0, 5.0], [5.0, 0.0]])), [0, 1]).item()
        assert good < bad

    def test_contrastive_loss_prefers_close_positive(self):
        anchor = Tensor(np.array([1.0, 0.0, 0.0]))
        positive = Tensor(np.array([0.9, 0.1, 0.0]))
        negatives = Tensor(np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]))
        close = contrastive_cosine_loss(anchor, positive, negatives).item()
        far = contrastive_cosine_loss(anchor, Tensor(np.array([0.0, 1.0, 0.0])), negatives).item()
        assert close < far


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path):
        model = Sequential(Linear(4, 4), LayerNorm(4))
        path = save_state_dict(model, tmp_path / "model.npz", metadata={"epochs": 3})
        clone = Sequential(Linear(4, 4), LayerNorm(4))
        metadata = load_state_dict(clone, path)
        # Checkpoints always record the parameter dtype alongside metadata.
        assert metadata == {"epochs": 3, "dtype": np.dtype(default_dtype()).name}
        x = Tensor(np.random.default_rng(0).standard_normal((2, 4)))
        np.testing.assert_allclose(model(x).numpy(), clone(x).numpy())
