"""End-to-end integration: corpus → training → query → retrieval quality.

This is the "does the whole pipeline hang together" test: a tiny FCM is
trained on a tiny corpus and must retrieve noisy near-duplicates of a query's
source table better than chance, and the hybrid index must agree with the
linear scan on the interval-tree path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import build_benchmark, evaluate_method, smoke_scale, summarize
from repro.bench.experiments import train_fcm_methods
from repro.baselines import QetchStarMethod
from repro.charts import render_chart_for_table
from repro.data import DataRepository
from repro.fcm import FCMModel, FCMScorer
from repro.index import HybridQueryProcessor, LSHConfig
from repro.vision import VisualElementExtractor

# Full corpus→training→retrieval pipeline: the slowest tier of the unit suite.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def scale():
    return smoke_scale()


@pytest.fixture(scope="module")
def bench_data(scale):
    return build_benchmark(scale.benchmark)


@pytest.fixture(scope="module")
def trained_fcm(bench_data, scale):
    return train_fcm_methods(bench_data, scale, variants=("FCM",))["FCM"]


def test_fcm_beats_random_ranking(bench_data, trained_fcm):
    """FCM's prec@k must exceed the expected precision of a random ranking."""
    summary = summarize(evaluate_method(trained_fcm, bench_data))
    random_expectation = bench_data.k / len(bench_data.repository)
    assert summary["prec"] > random_expectation


def test_qetch_star_runs_on_benchmark(bench_data):
    method = QetchStarMethod(extractor=VisualElementExtractor())
    method.index_repository(bench_data.repository)
    summary = summarize(evaluate_method(method, bench_data, queries=bench_data.queries[:2]))
    assert 0.0 <= summary["prec"] <= 1.0


def test_untrained_scorer_and_index_agree_on_interval_path(bench_data, scale):
    """Interval-tree pruning must not change the returned top-k set."""
    model = FCMModel(scale.fcm)
    scorer = FCMScorer(model)
    processor = HybridQueryProcessor(scorer, lsh_config=LSHConfig(num_bits=6, hamming_radius=2))
    processor.index_repository(bench_data.repository.tables)
    query = bench_data.queries[0]
    linear = processor.query(query.chart, k=bench_data.k, strategy="none")
    interval = processor.query(query.chart, k=bench_data.k, strategy="interval")
    assert set(interval.top_k_ids(bench_data.k)) == set(linear.top_k_ids(bench_data.k))


def test_retrieval_of_noisy_copies_from_repository(scale):
    """Scoring the query's own chart must rank its noisy near-duplicates well.

    This checks the core premise of the bench_data construction: tables whose
    columns are small perturbations of the query's underlying data are the
    relevant items, and even a briefly trained FCM should place a good
    fraction of them in its top-k (the ground-truth relevance certainly does).
    """
    bench_data = build_benchmark(scale.benchmark)
    query = bench_data.queries[0]
    related = {
        table_id
        for table_id in bench_data.repository.table_ids
        if table_id == query.source_table_id
        or table_id.startswith(f"{query.source_table_id}::noisy")
    }
    # Ground truth check (exact relevance): the related tables dominate it.
    overlap = len(related & query.relevant) / len(query.relevant)
    assert overlap >= 0.5
