"""Tests for ``repro.serving``: incremental parity, snapshots, sharded builds.

The load-bearing property throughout: any interleaving of ``add_tables`` /
``remove_tables`` on a live :class:`SearchService` must be indistinguishable
— interval-tree candidates, LSH buckets, query rankings — from a
from-scratch build over the final table set.  Snapshots and multi-process
sharded builds must be equally invisible.

Everything runs with an *untrained* tiny model: parity properties do not
depend on the weights, and skipping training keeps the whole module inside
the ``-m "not slow"`` fast profile.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.charts import render_chart_for_table
from repro.data import Column, Table
from repro.fcm import FCMModel, FCMScorer
from repro.index import Interval, IntervalTree, LSHConfig, RandomHyperplaneLSH
from repro.nn import using_dtype
from repro.obs import stage_names
from repro.serving import (
    CLOSED_FALLBACK_REASON,
    QueryWorkerPool,
    SNAPSHOT_VERSION,
    SNAPSHOT_VERSION_V2,
    SearchService,
    ServingConfig,
    SnapshotError,
    WorkerPoolError,
    compact_snapshot,
    encode_tables_sharded,
    shard_tables,
    snapshot_layout,
    snapshot_segments,
    split_shards,
)

from conftest import active_dtype, dtype_tol

#: Wall-clock guard for the multi-process tests: a stuck pool degrades to the
#: in-process fallback instead of hanging the suite.
SHARD_TIMEOUT_SECONDS = 120.0

STRATEGIES = ("none", "interval", "lsh", "hybrid")


def _interval_key(interval: Interval):
    return (interval.low, interval.high, interval.table_id, interval.column_name)


def _interval_set(tree: IntervalTree):
    return {_interval_key(iv) for iv in tree.intervals}


@pytest.fixture(scope="module")
def serving_model(tiny_fcm_config):
    return FCMModel(tiny_fcm_config)


@pytest.fixture(scope="module")
def serving_tables(small_records):
    return [record.table for record in small_records]


@pytest.fixture(scope="module")
def query_charts(small_records, tiny_fcm_config):
    charts = []
    for record in small_records[:3]:
        charts.append(
            render_chart_for_table(
                record.table,
                list(record.spec.y_columns),
                x_column=record.spec.x_column,
                spec=tiny_fcm_config.chart_spec,
            )
        )
    return charts


def _make_service(model, **config_kwargs) -> SearchService:
    config_kwargs.setdefault("lsh_config", LSHConfig(num_bits=6, hamming_radius=1))
    return SearchService(model, ServingConfig(**config_kwargs))


def _assert_rankings_match(a, b, tolerance=None):
    if tolerance is None:
        # float64 keeps the historical tight bound; float32 allows the
        # ~1e-6-epsilon noise two differently-batched encodes accumulate.
        tolerance = dtype_tol(1e-8, 5e-5)
    if active_dtype() == np.float64:
        assert [t for t, _ in a.ranking] == [t for t, _ in b.ranking]
        for (_, score_a), (_, score_b) in zip(a.ranking, b.ranking):
            assert abs(score_a - score_b) <= tolerance
        return
    # Under float32 two independently built indexes may swap *near-tied*
    # entries: any position where the ids differ must be such a tie, and
    # every id ranked by both must score the same up to the tolerance.
    scores_a, scores_b = dict(a.ranking), dict(b.ranking)
    for tid in set(scores_a) & set(scores_b):
        assert abs(scores_a[tid] - scores_b[tid]) <= tolerance
    for (ta, score_a), (tb, score_b) in zip(a.ranking, b.ranking):
        if ta != tb:
            assert abs(score_a - score_b) <= tolerance, (ta, tb)


def _assert_equivalent(service: SearchService, reference: SearchService, charts):
    """Structures and query results of ``service`` equal the fresh rebuild."""
    assert sorted(service.table_ids) == sorted(reference.table_ids)
    assert _interval_set(service.processor.interval_tree) == _interval_set(
        reference.processor.interval_tree
    )
    assert service.processor.lsh.buckets == reference.processor.lsh.buckets
    assert (
        service.processor.lsh.export_codes()
        == reference.processor.lsh.export_codes()
    )
    for chart in charts:
        for strategy in STRATEGIES:
            assert service.processor.candidates(chart, strategy) == (
                reference.processor.candidates(chart, strategy)
            )
            _assert_rankings_match(
                service.query(chart, k=5, strategy=strategy),
                reference.query(chart, k=5, strategy=strategy),
            )


# --------------------------------------------------------------------------- #
# Interval tree: incremental adds, tombstone removes, compaction
# --------------------------------------------------------------------------- #
class TestIntervalTreeIncremental:
    def _brute_force(self, intervals, low, high):
        return {iv.table_id for iv in intervals if iv.overlaps(low, high)}

    def test_add_after_build_is_queryable_without_rebuild(self):
        tree = IntervalTree([Interval(0.0, 5.0, "a", "c")])
        tree.add(Interval(10.0, 20.0, "b", "c"))
        assert tree.query_table_ids(12.0, 13.0) == {"b"}
        assert tree.query_table_ids(-100.0, 100.0) == {"a", "b"}
        assert len(tree) == 2

    def test_remove_table_tombstones_until_compaction(self):
        tree = IntervalTree(
            [
                Interval(0.0, 5.0, "a", "c1"),
                Interval(3.0, 8.0, "a", "c2"),
                Interval(4.0, 12.0, "b", "c1"),
            ]
        )
        assert tree.remove_table("a") == 2
        assert tree.query_table_ids(4.0, 4.5) == {"b"}
        assert len(tree) == 1
        assert {iv.table_id for iv in tree.intervals} == {"b"}
        # Compaction must not change any answer.
        tree.build()
        assert tree.query_table_ids(4.0, 4.5) == {"b"}
        assert len(tree) == 1

    def test_remove_unknown_table_is_noop(self):
        tree = IntervalTree([Interval(0.0, 1.0, "a", "c")])
        assert tree.remove_table("nope") == 0
        assert tree.query_table_ids(0.0, 1.0) == {"a"}

    def test_remove_then_re_add_does_not_resurrect_stale_intervals(self):
        tree = IntervalTree(
            [Interval(0.0, 5.0, "a", "old"), Interval(10.0, 20.0, "b", "c")]
        )
        tree.remove_table("a")
        tree.add(Interval(100.0, 200.0, "a", "new"))
        assert tree.query_table_ids(0.0, 5.0) == set()  # old "a" stays dead
        assert tree.query_table_ids(150.0, 160.0) == {"a"}

    def test_random_interleaving_matches_brute_force(self):
        rng = np.random.default_rng(42)
        tree = IntervalTree()
        live: list = []
        next_id = 0
        for step in range(200):
            action = rng.random()
            if action < 0.55 or not live:
                low = float(rng.uniform(-50, 50))
                interval = Interval(low, low + float(rng.uniform(0, 20)), f"t{next_id}", "c")
                next_id += 1
                tree.add(interval)
                live.append(interval)
            else:
                victim = live[int(rng.integers(len(live)))].table_id
                expected_removed = sum(1 for iv in live if iv.table_id == victim)
                assert tree.remove_table(victim) == expected_removed
                live = [iv for iv in live if iv.table_id != victim]
            if step % 10 == 0:
                low = float(rng.uniform(-60, 60))
                high = low + float(rng.uniform(0, 30))
                assert tree.query_table_ids(low, high) == self._brute_force(live, low, high)
        assert {_interval_key(iv) for iv in tree.intervals} == {
            _interval_key(iv) for iv in live
        }

    def test_auto_compaction_keeps_answers_exact(self):
        tree = IntervalTree([Interval(0.0, 1.0, "seed", "c")])
        live = [Interval(0.0, 1.0, "seed", "c")]
        # Push far past COMPACT_MIN so at least one auto-compaction fires.
        for i in range(3 * IntervalTree.COMPACT_MIN):
            interval = Interval(float(i), float(i) + 0.5, f"t{i}", "c")
            tree.add(interval)
            live.append(interval)
        assert tree._pending != live  # compaction actually happened
        for low, high in [(-5.0, 0.5), (10.2, 10.4), (0.0, 1e9)]:
            assert tree.query_table_ids(low, high) == self._brute_force(live, low, high)


# --------------------------------------------------------------------------- #
# LSH: removal and code export/import
# --------------------------------------------------------------------------- #
class TestLSHRemove:
    def test_remove_drops_table_and_empty_buckets(self):
        lsh = RandomHyperplaneLSH(8, LSHConfig(num_bits=8, hamming_radius=0, seed=0))
        rng = np.random.default_rng(0)
        shared = rng.standard_normal(8)
        lsh.add("a", shared[None, :])
        lsh.add("b", shared[None, :])
        lsh.add("c", rng.standard_normal((2, 8)))
        buckets_before = lsh.buckets

        assert lsh.remove("c") is True
        assert lsh.remove("c") is False  # already gone
        assert "c" not in lsh.indexed_table_ids
        # Post-removal state identical to an index that never saw "c".
        fresh = RandomHyperplaneLSH(8, LSHConfig(num_bits=8, hamming_radius=0, seed=0))
        fresh.add("a", shared[None, :])
        fresh.add("b", shared[None, :])
        assert lsh.buckets == fresh.buckets
        assert lsh.query(shared[None, :]) == {"a", "b"}
        assert buckets_before != lsh.buckets

    def test_export_codes_round_trip(self):
        lsh = RandomHyperplaneLSH(8, LSHConfig(num_bits=6, hamming_radius=1, seed=3))
        rng = np.random.default_rng(1)
        for i in range(4):
            lsh.add(f"t{i}", rng.standard_normal((3, 8)))
        clone = RandomHyperplaneLSH(8, LSHConfig(num_bits=6, hamming_radius=1, seed=3))
        for table_id, codes in lsh.export_codes().items():
            clone.add_codes(table_id, codes)
        assert clone.buckets == lsh.buckets
        probe = rng.standard_normal((2, 8))
        assert clone.query(probe) == lsh.query(probe)


# --------------------------------------------------------------------------- #
# SearchService: incremental parity with a from-scratch rebuild
# --------------------------------------------------------------------------- #
class TestIncrementalParity:
    def test_adds_and_removes_match_fresh_rebuild(
        self, serving_model, serving_tables, query_charts
    ):
        assert len(serving_tables) >= 8
        service = _make_service(serving_model)
        service.build(serving_tables[:5])

        # Interleave: add 3, remove 2 (one original, one just added), add 1 back.
        service.add_tables(serving_tables[5:8])
        service.remove_tables([serving_tables[1].table_id, serving_tables[6].table_id])
        service.add_tables([serving_tables[1]])

        final_ids = {t.table_id for t in serving_tables[:8]} - {serving_tables[6].table_id}
        final_tables = [t for t in serving_tables[:8] if t.table_id in final_ids]
        reference = _make_service(FCMModel(serving_model.config))
        reference.build(final_tables)

        assert sorted(service.table_ids) == sorted(t.table_id for t in final_tables)
        _assert_equivalent(service, reference, query_charts)

    def test_add_existing_table_is_idempotent(self, serving_model, serving_tables):
        service = _make_service(serving_model)
        service.build(serving_tables[:4])
        stats = service.add_tables(serving_tables[:4])
        assert stats.num_tables == 4
        assert sorted(service.table_ids) == sorted(t.table_id for t in serving_tables[:4])

    def test_remove_evicts_scorer_cache(self, serving_model, serving_tables):
        service = _make_service(serving_model)
        service.build(serving_tables[:3])
        victim = serving_tables[0].table_id
        assert victim in service.scorer.indexed_table_ids
        assert service.remove_tables([victim]) == 1
        assert victim not in service.scorer.indexed_table_ids
        with pytest.raises(KeyError):
            service.scorer.encoded_table(victim)

    def test_query_fanout_matches_single_batch(
        self, serving_model, serving_tables, query_charts
    ):
        service = _make_service(serving_model, num_query_shards=3)
        service.build(serving_tables[:7])
        flat = _make_service(serving_model)
        flat.processor = service.processor  # same index, different verify path
        for chart in query_charts:
            for strategy in STRATEGIES:
                _assert_rankings_match(
                    service.query(chart, k=5, strategy=strategy),
                    flat.query(chart, k=5, strategy=strategy),
                )


# --------------------------------------------------------------------------- #
# Result cache + statistics
# --------------------------------------------------------------------------- #
class TestResultCacheAndStats:
    def test_warm_query_hits_cache_and_mutation_invalidates(
        self, serving_model, serving_tables, query_charts
    ):
        service = _make_service(serving_model)
        service.build(serving_tables[:5])
        chart = query_charts[0]

        cold = service.query(chart, k=3)
        warm = service.query(chart, k=3)
        assert warm is cold  # served from the cache, not recomputed
        stats = service.stats.per_strategy["hybrid"]
        assert stats.queries == 1 and stats.cache_hits == 1
        assert stats.mean_seconds > 0 and stats.mean_candidates > 0

        service.add_tables([serving_tables[5]])
        after_add = service.query(chart, k=3)
        assert after_add is not cold
        assert after_add.total_tables == cold.total_tables + 1
        assert service.stats.invalidations >= 1
        assert service.stats.tables_added == 1

    def test_equal_charts_from_different_objects_share_cache_entries(
        self, serving_model, serving_tables, small_records, tiny_fcm_config
    ):
        """Content-hash keys: re-rendering the same chart hits the caches."""
        record = small_records[0]

        def render():
            return render_chart_for_table(
                record.table,
                list(record.spec.y_columns),
                x_column=record.spec.x_column,
                spec=tiny_fcm_config.chart_spec,
            )

        chart_a, chart_b = render(), render()
        assert chart_a is not chart_b
        assert chart_a.fingerprint() == chart_b.fingerprint()

        service = _make_service(serving_model)
        service.build(serving_tables[:5])
        cold = service.query(chart_a, k=3)
        warm = service.query(chart_b, k=3)  # different object, equal content
        assert warm is cold
        assert service.stats.per_strategy["hybrid"].cache_hits == 1
        # The scorer's query-prep LRU is content-keyed the same way: both
        # objects map to one entry.
        assert len(service.scorer._query_cache) == 1
        prepared_a = service.scorer.prepare_query(chart_a)
        prepared_b = service.scorer.prepare_query(chart_b)
        assert prepared_a is prepared_b

        # A genuinely different chart misses, and in-place mutation changes
        # the key (no stale entry can be served).
        other_record = small_records[1]
        other = render_chart_for_table(
            other_record.table,
            list(other_record.spec.y_columns),
            x_column=other_record.spec.x_column,
            spec=tiny_fcm_config.chart_spec,
        )
        assert other.fingerprint() != chart_a.fingerprint()
        mutated = render()
        mutated.image[0, 0] += 1.0
        assert mutated.fingerprint() != chart_a.fingerprint()

    def test_cache_distinguishes_k_and_strategy(
        self, serving_model, serving_tables, query_charts
    ):
        service = _make_service(serving_model)
        service.build(serving_tables[:5])
        chart = query_charts[0]
        a = service.query(chart, k=2, strategy="none")
        b = service.query(chart, k=4, strategy="none")
        c = service.query(chart, k=2, strategy="interval")
        assert len(a.ranking) == 2 and len(b.ranking) == 4
        assert a is not b and a is not c

    def test_zero_cache_size_disables_caching(
        self, serving_model, serving_tables, query_charts
    ):
        service = _make_service(serving_model, result_cache_size=0)
        service.build(serving_tables[:4])
        chart = query_charts[0]
        first = service.query(chart, k=3)
        second = service.query(chart, k=3)
        assert first is not second
        _assert_rankings_match(first, second)


# --------------------------------------------------------------------------- #
# Persistence: snapshot round trip
# --------------------------------------------------------------------------- #
class TestSnapshot:
    def test_save_load_round_trip_preserves_everything(
        self, serving_model, serving_tables, query_charts, tmp_path
    ):
        service = _make_service(serving_model)
        service.build(serving_tables[:6])
        service.remove_tables([serving_tables[2].table_id])  # snapshot mid-life

        path = service.save_index(tmp_path / "index.npz")
        loaded = SearchService.load_index(serving_model, path)

        assert sorted(loaded.table_ids) == sorted(service.table_ids)
        _assert_equivalent(loaded, service, query_charts)
        # The restored scorer cache is byte-identical, no re-encoding needed.
        for table_id in service.table_ids:
            np.testing.assert_array_equal(
                loaded.scorer.encoded_table(table_id).representations,
                service.scorer.encoded_table(table_id).representations,
            )

    def test_loaded_service_supports_further_mutation(
        self, serving_model, serving_tables, query_charts, tmp_path
    ):
        service = _make_service(serving_model)
        service.build(serving_tables[:5])
        path = service.save_index(tmp_path / "index.npz")

        loaded = SearchService.load_index(serving_model, path)
        loaded.add_tables(serving_tables[5:7])
        loaded.remove_tables([serving_tables[0].table_id])

        reference = _make_service(FCMModel(serving_model.config))
        reference.build(serving_tables[1:7])
        _assert_equivalent(loaded, reference, query_charts)

    def test_embed_dim_mismatch_rejected(
        self, serving_model, serving_tables, tiny_fcm_config, tmp_path
    ):
        from dataclasses import replace

        service = _make_service(serving_model)
        service.build(serving_tables[:3])
        path = service.save_index(tmp_path / "index.npz")
        other = FCMModel(replace(tiny_fcm_config, embed_dim=8, num_heads=2))
        with pytest.raises(ValueError, match="embed_dim"):
            SearchService.load_index(other, path)


# --------------------------------------------------------------------------- #
# Sharded multi-process builds
# --------------------------------------------------------------------------- #
class TestShardedBuild:
    def test_shard_tables_partitions_everything_once(self, serving_tables):
        shards = shard_tables(serving_tables, 3)
        flattened = [t.table_id for shard in shards for t in shard]
        assert flattened == [t.table_id for t in serving_tables]
        assert len(shards) == 3

    def test_sharded_encodings_match_single_process(self, serving_model, serving_tables):
        tables = serving_tables[:6]
        encoded, report = encode_tables_sharded(
            serving_model, tables, num_workers=2, timeout=SHARD_TIMEOUT_SECONDS
        )
        if report.fallback_reason is not None:
            pytest.skip(f"process pool unavailable: {report.fallback_reason}")
        assert report.num_workers == 2
        assert [tid for shard in report.shards for tid in shard] == [
            t.table_id for t in tables
        ]
        reference = FCMScorer(serving_model)
        reference.index_repository(tables)
        assert [e.table_id for e in encoded] == [t.table_id for t in tables]
        for item in encoded:
            expected = reference.encoded_table(item.table_id)
            np.testing.assert_allclose(
                item.representations, expected.representations, atol=1e-8
            )
            np.testing.assert_allclose(
                item.column_embeddings, expected.column_embeddings, atol=1e-8
            )
            assert item.column_names == expected.column_names

    def test_sharded_service_build_queries_match(
        self, serving_model, serving_tables, query_charts
    ):
        sharded = _make_service(serving_model, build_timeout=SHARD_TIMEOUT_SECONDS)
        sharded.build(serving_tables[:6], num_workers=2)
        if (
            sharded.last_shard_report is not None
            and sharded.last_shard_report.fallback_reason is not None
        ):
            pytest.skip(
                f"process pool unavailable: {sharded.last_shard_report.fallback_reason}"
            )
        reference = _make_service(FCMModel(serving_model.config))
        reference.build(serving_tables[:6])
        _assert_equivalent(sharded, reference, query_charts)

    def test_single_worker_skips_the_pool(self, serving_model, serving_tables):
        encoded, report = encode_tables_sharded(serving_model, serving_tables[:3], num_workers=1)
        assert report.num_workers == 1
        assert report.fallback_reason is None
        assert len(encoded) == 3


# --------------------------------------------------------------------------- #
# Process-level parallel query verification (QueryWorkerPool)
# --------------------------------------------------------------------------- #
def _pooled_service(model, **config_kwargs) -> SearchService:
    config_kwargs.setdefault("query_workers", 2)
    config_kwargs.setdefault("worker_timeout", SHARD_TIMEOUT_SECONDS)
    return _make_service(model, **config_kwargs)


def _skip_unless_pool_ran(service: SearchService) -> None:
    if service.worker_fallback_reason is not None:
        pytest.skip(f"query worker pool unavailable: {service.worker_fallback_reason}")


class TestQueryWorkerPool:
    def test_split_shards_partitions_everything_once(self):
        ids = [f"t{i}" for i in range(7)]
        shards = split_shards(ids, 3)
        assert [table_id for shard in shards for table_id in shard] == ids
        assert len(shards) == 3
        assert split_shards(ids, 99) == [[table_id] for table_id in ids]
        assert split_shards([], 3) == []

    def test_pool_requires_two_workers(self, serving_model):
        with pytest.raises(ValueError, match="num_workers"):
            QueryWorkerPool(serving_model, num_workers=1)

    def test_worker_pool_rankings_match_in_process(
        self, serving_model, serving_tables, query_charts
    ):
        """The acceptance bar: pool scores identical to in-process serving."""
        pooled = _pooled_service(serving_model)
        reference = _make_service(FCMModel(serving_model.config))
        try:
            pooled.build(serving_tables[:7])
            reference.build(serving_tables[:7])
            pooled.query(query_charts[0], k=5)  # spins the pool up lazily
            _skip_unless_pool_ran(pooled)
            for chart in query_charts:
                for strategy in STRATEGIES:
                    _assert_rankings_match(
                        pooled.query(chart, k=5, strategy=strategy),
                        reference.query(chart, k=5, strategy=strategy),
                    )
            assert pooled.worker_fallback_reason is None
            assert pooled.stats.worker_queries > 0
            assert pooled.stats.worker_fallbacks == 0
        finally:
            pooled.close()

    def test_explicit_shard_count_scatters_over_the_pool(
        self, serving_model, serving_tables, query_charts
    ):
        pooled = _pooled_service(serving_model, num_query_shards=3)
        reference = _make_service(FCMModel(serving_model.config))
        try:
            pooled.build(serving_tables[:7])
            reference.build(serving_tables[:7])
            result = pooled.query(query_charts[0], k=5)
            _skip_unless_pool_ran(pooled)
            _assert_rankings_match(result, reference.query(query_charts[0], k=5))
            assert pooled.query_pool is not None
            assert pooled.query_pool.stats.queries == 1
        finally:
            pooled.close()

    def test_mutations_sync_to_workers(
        self, serving_model, serving_tables, query_charts
    ):
        """add/remove between queries ships only the diff, results stay exact."""
        pooled = _pooled_service(serving_model)
        reference = _make_service(FCMModel(serving_model.config))
        try:
            pooled.build(serving_tables[:5])
            pooled.query(query_charts[0], k=5)
            _skip_unless_pool_ran(pooled)

            pooled.add_tables(serving_tables[5:8])
            pooled.remove_tables([serving_tables[1].table_id])
            final_tables = [
                t
                for t in serving_tables[:8]
                if t.table_id != serving_tables[1].table_id
            ]
            reference.build(final_tables)
            for chart in query_charts:
                for strategy in STRATEGIES:
                    _assert_rankings_match(
                        pooled.query(chart, k=5, strategy=strategy),
                        reference.query(chart, k=5, strategy=strategy),
                    )
            assert pooled.worker_fallback_reason is None
            pool_stats = pooled.query_pool.stats
            assert pool_stats.tables_synced == 8  # 5 initial + 3 added
            assert pool_stats.tables_evicted == 1
        finally:
            pooled.close()

    def test_reused_table_id_with_new_content_resyncs_to_workers(
        self, serving_model, serving_tables, query_charts
    ):
        """Remove + re-add under the same id must re-ship the new encoding.

        The id-level diff alone would call this 'no change'; the pool sync
        is content-aware via the removed-ids set, so workers cannot keep
        scoring the stale table.
        """
        victim = serving_tables[0]
        impostor = Table(victim.table_id, list(serving_tables[8].columns))
        pooled = _pooled_service(serving_model)
        reference = _make_service(FCMModel(serving_model.config))
        try:
            pooled.build(serving_tables[:5])
            pooled.query(query_charts[0], k=5)
            _skip_unless_pool_ran(pooled)

            pooled.remove_tables([victim.table_id])
            pooled.add_tables([impostor])
            reference.build([impostor] + serving_tables[1:5])
            for chart in query_charts:
                _assert_rankings_match(
                    pooled.query(chart, k=5), reference.query(chart, k=5)
                )
            assert pooled.worker_fallback_reason is None
        finally:
            pooled.close()

    def test_pool_failure_falls_back_in_process_and_reset_reenables(
        self, serving_model, serving_tables, query_charts
    ):
        pooled = _pooled_service(serving_model)
        reference = _make_service(FCMModel(serving_model.config))
        try:
            pooled.build(serving_tables[:5])
            reference.build(serving_tables[:5])
            pooled.query(query_charts[0], k=5)
            _skip_unless_pool_ran(pooled)

            # Sabotage the live pool behind the service's back: the next
            # uncached query hits dead workers, falls back in-process and
            # retires the pool — the query itself must still succeed.
            pooled.query_pool.close()
            fallback_result = pooled.query(query_charts[1], k=5)
            assert pooled.worker_fallback_reason is not None
            assert pooled.query_pool is None
            assert pooled.stats.worker_fallbacks == 1
            _assert_rankings_match(
                fallback_result, reference.query(query_charts[1], k=5)
            )

            # Sticky: further queries serve in-process without re-spawning.
            pooled.query(query_charts[2], k=5)
            assert pooled.stats.worker_fallbacks == 1

            # reset_query_pool() opts back in; a fresh pool serves again.
            worker_queries_before = pooled.stats.worker_queries
            pooled.reset_query_pool()
            retried = pooled.query(query_charts[0], k=7)  # new k -> uncached
            if pooled.worker_fallback_reason is None:
                assert pooled.stats.worker_queries == worker_queries_before + 1
            _assert_rankings_match(retried, reference.query(query_charts[0], k=7))
        finally:
            pooled.close()

    def test_fallback_kind_distinguishes_crash_from_close(
        self, serving_model, serving_tables, query_charts
    ):
        """`stats.worker_fallback_kind`: "failure" for crash-induced
        retirement, "closed" for the deliberate close() seal, None while
        the pool is usable (and after reset_query_pool)."""
        pooled = _pooled_service(serving_model)
        try:
            pooled.build(serving_tables[:4])
            assert pooled.stats.worker_fallback_kind is None
            pooled.query(query_charts[0], k=5)
            _skip_unless_pool_ran(pooled)

            pooled.query_pool.close()  # sabotage → crash-style fallback
            pooled.query(query_charts[1], k=5)
            assert pooled.stats.worker_fallback_kind == "failure"
            assert pooled.worker_fallback_reason != CLOSED_FALLBACK_REASON

            pooled.reset_query_pool()
            assert pooled.stats.worker_fallback_kind is None
        finally:
            pooled.close()
        assert pooled.worker_fallback_reason == CLOSED_FALLBACK_REASON
        assert pooled.stats.worker_fallback_kind == "closed"

    def test_traced_pooled_query_stitches_worker_spans(
        self, serving_model, serving_tables, query_charts
    ):
        """End-to-end stitching: a traced query served through the pool
        carries worker-side span trees under its own trace id."""
        pooled = _pooled_service(serving_model, tracing=True)
        try:
            pooled.build(serving_tables[:5])
            pooled.query(query_charts[0], k=5)
            _skip_unless_pool_ran(pooled)

            pooled.query(query_charts[1], k=5)  # pool already warm
            tree = pooled.last_trace
            assert tree is not None
            names = stage_names(tree)
            assert {"query", "cache", "candidates", "verify",
                    "scatter_gather", "merge"} <= names
            if pooled.stats.worker_queries and "worker" in names:
                workers = [
                    node
                    for node in _walk_tree(tree)
                    if node["name"] == "worker"
                ]
                assert workers
                for worker in workers:
                    assert worker["trace_id"] == tree["trace_id"]
                    assert "shard_score" in stage_names(worker)
        finally:
            pooled.close()


def _walk_tree(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk_tree(child)


# --------------------------------------------------------------------------- #
# Append-only snapshot segments + compaction
# --------------------------------------------------------------------------- #
class TestSnapshotSegments:
    def test_append_records_delta_and_load_replays(
        self, serving_model, serving_tables, query_charts, tmp_path
    ):
        service = _make_service(serving_model)
        service.build(serving_tables[:6])
        base = service.save_index(tmp_path / "index.npz")

        service.add_tables(serving_tables[6:8])
        segment = service.save_index(base, append=True)
        assert segment != base
        assert snapshot_segments(base) == [segment]

        loaded = SearchService.load_index(serving_model, base)
        assert sorted(loaded.table_ids) == sorted(service.table_ids)
        _assert_equivalent(loaded, service, query_charts)

    def test_empty_delta_append_writes_nothing(
        self, serving_model, serving_tables, tmp_path
    ):
        service = _make_service(serving_model)
        service.build(serving_tables[:4])
        base = service.save_index(tmp_path / "index.npz")

        assert service.save_index(base, append=True) == base
        assert snapshot_segments(base) == []

        # remove + re-add of the same table nets out to no recorded change.
        service.remove_tables([serving_tables[0].table_id])
        service.add_tables([serving_tables[0]])
        assert service.save_index(base, append=True) == base
        assert snapshot_segments(base) == []

    def test_reused_table_id_with_new_content_is_a_real_delta(
        self, serving_model, serving_tables, query_charts, tmp_path
    ):
        """Content fingerprints make a same-id/different-content re-add a
        tombstone + re-add, not an empty delta that keeps the stale arrays."""
        victim = serving_tables[0]
        impostor = Table(victim.table_id, list(serving_tables[8].columns))
        service = _make_service(serving_model)
        service.build(serving_tables[:5])
        base = service.save_index(tmp_path / "index.npz")

        service.remove_tables([victim.table_id])
        service.add_tables([impostor])
        segment = service.save_index(base, append=True)
        assert segment != base  # a segment was actually written

        loaded = SearchService.load_index(serving_model, base)
        assert sorted(loaded.table_ids) == sorted(service.table_ids)
        _assert_equivalent(loaded, service, query_charts)
        np.testing.assert_array_equal(
            loaded.scorer.encoded_table(victim.table_id).representations,
            service.scorer.encoded_table(victim.table_id).representations,
        )

    def test_lsh_config_mismatched_append_rejected(
        self, serving_model, serving_tables, tmp_path
    ):
        service = _make_service(serving_model)
        service.build(serving_tables[:3])
        base = service.save_index(tmp_path / "index.npz")

        other = _make_service(
            FCMModel(serving_model.config),
            lsh_config=LSHConfig(num_bits=8, hamming_radius=1),
        )
        other.build(serving_tables[:4])
        with pytest.raises(ValueError, match="LSH configuration"):
            other.save_index(base, append=True)

    def test_append_requires_an_existing_base(
        self, serving_model, serving_tables, tmp_path
    ):
        service = _make_service(serving_model)
        service.build(serving_tables[:3])
        with pytest.raises(ValueError, match="existing base snapshot"):
            service.save_index(tmp_path / "missing.npz", append=True)

    def test_tombstone_replay_add_then_remove_then_append(
        self, serving_model, serving_tables, query_charts, tmp_path
    ):
        service = _make_service(serving_model)
        service.build(serving_tables[:5])
        base = service.save_index(tmp_path / "index.npz")

        # Segment 1: +2 tables, -1 base table, -1 just-added table.
        service.add_tables(serving_tables[5:7])
        service.remove_tables(
            [serving_tables[1].table_id, serving_tables[6].table_id]
        )
        first = service.save_index(base, append=True)
        # Segment 2: a further add, and a tombstone for a segment-1 table.
        service.add_tables(serving_tables[7:8])
        service.remove_tables([serving_tables[5].table_id])
        second = service.save_index(base, append=True)
        assert snapshot_segments(base) == [first, second]

        loaded = SearchService.load_index(serving_model, base)
        assert sorted(loaded.table_ids) == sorted(service.table_ids)
        _assert_equivalent(loaded, service, query_charts)

        reference = _make_service(FCMModel(serving_model.config))
        live_ids = set(service.table_ids)
        reference.build([t for t in serving_tables if t.table_id in live_ids])
        _assert_equivalent(loaded, reference, query_charts)

    def test_compaction_equivalence(
        self, serving_model, serving_tables, query_charts, tmp_path
    ):
        service = _make_service(serving_model)
        service.build(serving_tables[:5])
        base = service.save_index(tmp_path / "index.npz")
        service.add_tables(serving_tables[5:7])
        service.save_index(base, append=True)
        service.remove_tables([serving_tables[0].table_id])
        service.save_index(base, append=True)

        before = SearchService.load_index(serving_model, base)
        assert compact_snapshot(base) == base
        assert snapshot_segments(base) == []
        after = SearchService.load_index(serving_model, base)

        assert sorted(after.table_ids) == sorted(before.table_ids)
        _assert_equivalent(after, before, query_charts)
        for table_id in before.table_ids:
            np.testing.assert_array_equal(
                after.scorer.encoded_table(table_id).representations,
                before.scorer.encoded_table(table_id).representations,
            )
        # Compacting an already-compact snapshot is a no-op.
        assert compact_snapshot(base) == base

    def test_full_save_supersedes_segments(
        self, serving_model, serving_tables, query_charts, tmp_path
    ):
        service = _make_service(serving_model)
        service.build(serving_tables[:4])
        base = service.save_index(tmp_path / "index.npz")
        service.add_tables(serving_tables[4:6])
        service.save_index(base, append=True)

        assert service.save_index(base) == base  # full rewrite
        assert snapshot_segments(base) == []
        loaded = SearchService.load_index(serving_model, base)
        _assert_equivalent(loaded, service, query_charts)

    def test_dtype_mismatched_append_rejected(
        self, serving_model, serving_tables, tiny_fcm_config, tmp_path
    ):
        service = _make_service(serving_model)
        service.build(serving_tables[:3])
        base = service.save_index(tmp_path / "index.npz")

        other = "float32" if active_dtype() == np.float64 else "float64"
        with using_dtype(other):
            other_service = _make_service(FCMModel(tiny_fcm_config))
            other_service.build(serving_tables[:4])
        with pytest.raises(ValueError, match="single-precision"):
            other_service.save_index(base, append=True)

    def test_dtype_mismatched_segment_rejected_at_load(
        self, serving_model, serving_tables, tmp_path
    ):
        from repro.serving.persistence import _read_archive, _write_archive

        service = _make_service(serving_model)
        service.build(serving_tables[:3])
        base = service.save_index(tmp_path / "index.npz")
        service.add_tables(serving_tables[3:4])
        segment = service.save_index(base, append=True)

        # Corrupt the lineage: flip the segment's recorded precision.
        meta, arrays = _read_archive(segment)
        meta["dtype"] = "float32" if meta["dtype"] == "float64" else "float64"
        _write_archive(segment, meta, arrays)
        with pytest.raises(ValueError, match="single-precision"):
            SearchService.load_index(serving_model, base)
        # Appending over the corrupted lineage is refused the same way.
        service.add_tables(serving_tables[4:5])
        with pytest.raises(ValueError, match="single-precision"):
            service.save_index(base, append=True)


# --------------------------------------------------------------------------- #
# Zero-copy mmap-shared snapshots (ServingConfig.mmap_index)
# --------------------------------------------------------------------------- #
def _is_mmap_backed(array: np.ndarray) -> bool:
    while isinstance(array, np.ndarray):
        if isinstance(array, np.memmap):
            return True
        array = array.base
    return False


class TestMmapServing:
    """The mmap path must be invisible to queries and visible only in RSS.

    Parity here is stricter than elsewhere in the file: copy-loaded and
    mmap-loaded services read the *same* snapshot bytes, so their rankings
    must agree to 1e-8 under either ``REPRO_DTYPE`` profile — there is no
    re-encoding noise to forgive.
    """

    #: Same-bytes tolerance — NOT dtype-widened like ``_assert_rankings_match``.
    PARITY_TOL = 1e-8

    def _snapshot(self, model, tables, tmp_path, layout="v2"):
        service = _make_service(model)
        service.build(tables)
        return service.save_index(tmp_path / "index.npz", layout=layout)

    def _assert_same_rankings(self, a, b):
        assert [t for t, _ in a.ranking] == [t for t, _ in b.ranking]
        for (_, score_a), (_, score_b) in zip(a.ranking, b.ranking):
            assert abs(score_a - score_b) <= self.PARITY_TOL

    def test_mmap_load_matches_copy_load_in_process(
        self, serving_model, serving_tables, query_charts, tmp_path
    ):
        path = self._snapshot(serving_model, serving_tables[:6], tmp_path)
        copy = SearchService.load_index(
            serving_model, path, ServingConfig(lsh_config=LSHConfig(num_bits=6))
        )
        mapped = SearchService.load_index(
            serving_model,
            path,
            ServingConfig(lsh_config=LSHConfig(num_bits=6), mmap_index=True),
        )
        assert not copy.mmap_active
        assert mapped.mmap_active
        for table_id in mapped.table_ids:
            encoded = mapped.scorer.encoded_table(table_id)
            assert _is_mmap_backed(encoded.representations)
            assert not encoded.representations.flags.writeable
            assert not _is_mmap_backed(
                copy.scorer.encoded_table(table_id).representations
            )
        for chart in query_charts:
            for strategy in STRATEGIES:
                self._assert_same_rankings(
                    mapped.query(chart, k=5, strategy=strategy),
                    copy.query(chart, k=5, strategy=strategy),
                )

    def test_mmap_workers_preload_the_snapshot_and_match_copy_pool(
        self, serving_model, serving_tables, query_charts, tmp_path
    ):
        """Workers open the mapping themselves: first query ships nothing."""
        path = self._snapshot(serving_model, serving_tables[:8], tmp_path)
        base_config = dict(
            lsh_config=LSHConfig(num_bits=6, hamming_radius=1),
            query_workers=2,
            worker_timeout=SHARD_TIMEOUT_SECONDS,
        )
        copy = SearchService.load_index(
            serving_model, path, ServingConfig(**base_config)
        )
        mapped = SearchService.load_index(
            serving_model, path, ServingConfig(mmap_index=True, **base_config)
        )
        try:
            for chart in query_charts:
                for strategy in STRATEGIES:
                    self._assert_same_rankings(
                        mapped.query(chart, k=5, strategy=strategy),
                        copy.query(chart, k=5, strategy=strategy),
                    )
            _skip_unless_pool_ran(mapped)
            _skip_unless_pool_ran(copy)
            # The copy pool pickled every table through the pipe; the mmap
            # pool shipped none — its workers mapped the snapshot at start.
            assert sorted(mapped.query_pool.preloaded_table_ids) == sorted(
                mapped.table_ids
            )
            assert mapped.query_pool.stats.tables_synced == 0
            assert copy.query_pool.stats.tables_synced == len(copy.table_ids)
            assert len(mapped.query_pool.worker_pids) == 2
        finally:
            mapped.close()
            copy.close()

    def test_mutations_after_mmap_load_stay_exact(
        self, serving_model, serving_tables, query_charts, tmp_path
    ):
        """Post-load add/remove rides the normal sync path on top of mmap.

        The nastiest case: a snapshot table is removed and its id re-added
        with different content *before* the pool ever starts.  Workers
        preload the stale snapshot version, so the service must re-ship
        exactly the dirty table (and only it) on top of the mapping.
        """
        victim = serving_tables[0]
        impostor = Table(victim.table_id, list(serving_tables[8].columns))
        path = self._snapshot(serving_model, serving_tables[:5], tmp_path)
        mapped = SearchService.load_index(
            serving_model,
            path,
            ServingConfig(
                lsh_config=LSHConfig(num_bits=6, hamming_radius=1),
                query_workers=2,
                worker_timeout=SHARD_TIMEOUT_SECONDS,
                mmap_index=True,
            ),
        )
        reference = _make_service(FCMModel(serving_model.config))
        try:
            mapped.remove_tables([victim.table_id])
            mapped.add_tables([impostor])
            reference.build([impostor] + serving_tables[1:5])
            for chart in query_charts:
                _assert_rankings_match(
                    mapped.query(chart, k=5), reference.query(chart, k=5)
                )
            _skip_unless_pool_ran(mapped)
            # Only the re-added table crossed the pipe; the other four were
            # served straight from the workers' own mapping.
            assert mapped.query_pool.stats.tables_synced == 1
        finally:
            mapped.close()

    def test_v1_snapshot_falls_back_to_copy_load(
        self, serving_model, serving_tables, query_charts, tmp_path
    ):
        """mmap_index=True over a v1 snapshot degrades, loudly inspectable."""
        path = self._snapshot(
            serving_model, serving_tables[:4], tmp_path, layout="v1"
        )
        assert snapshot_layout(path) == SNAPSHOT_VERSION
        service = SearchService.load_index(
            serving_model,
            path,
            ServingConfig(lsh_config=LSHConfig(num_bits=6), mmap_index=True),
        )
        assert not service.mmap_active
        result = service.query(query_charts[0], k=3)
        assert result.ranking

    def test_mmap_service_saves_v2_by_default(
        self, serving_model, serving_tables, tmp_path
    ):
        service = _make_service(serving_model, mmap_index=True)
        service.build(serving_tables[:3])
        path = service.save_index(tmp_path / "index.npz")
        assert snapshot_layout(path) == SNAPSHOT_VERSION_V2
        # An explicit layout always wins over the config default.
        v1_path = service.save_index(tmp_path / "v1.npz", layout="v1")
        assert snapshot_layout(v1_path) == SNAPSHOT_VERSION
        # Appends never rewrite the base, whatever the config says.
        service.add_tables(serving_tables[3:4])
        service.save_index(path, append=True)
        assert snapshot_layout(path) == SNAPSHOT_VERSION_V2
        assert len(snapshot_segments(path)) == 1

    def test_service_compact_passthrough_migrates_layout(
        self, serving_model, serving_tables, query_charts, tmp_path
    ):
        path = self._snapshot(
            serving_model, serving_tables[:4], tmp_path, layout="v1"
        )
        SearchService.compact_snapshot(path, layout="v2")
        assert snapshot_layout(path) == SNAPSHOT_VERSION_V2
        mapped = SearchService.load_index(
            serving_model,
            path,
            ServingConfig(lsh_config=LSHConfig(num_bits=6), mmap_index=True),
        )
        assert mapped.mmap_active
        assert mapped.query(query_charts[0], k=3).ranking

    def test_corrupt_snapshot_surfaces_snapshot_error(
        self, serving_model, serving_tables, tmp_path
    ):
        path = self._snapshot(serving_model, serving_tables[:3], tmp_path)
        sidecar = next(path.parent.glob(path.stem + ".g*.reps.npy"))
        sidecar.unlink()
        with pytest.raises(SnapshotError, match=sidecar.name):
            SearchService.load_index(
                serving_model,
                path,
                ServingConfig(lsh_config=LSHConfig(num_bits=6), mmap_index=True),
            )


# --------------------------------------------------------------------------- #
# Failure-path hardening: finite timeouts, explicit closed state, shard edges
# --------------------------------------------------------------------------- #
class _ScriptedConn:
    """A fake worker pipe: records sends, answers ``score`` from a table.

    Lets the scatter/gather protocol be exercised without spawning processes
    (this container cannot), which is exactly what the empty-shard edge
    needs: the assertion is about what goes *over the pipe*.
    """

    def __init__(self):
        self.sent = []
        self._replies = []

    def send(self, message):
        self.sent.append(message)
        if message[0] == "score":
            _, _, shard, _trace_id, *_options = message
            self._replies.append(("ok", ({tid: 0.0 for tid in shard}, None)))

    def poll(self, timeout=None):
        return bool(self._replies)

    def recv(self):
        return self._replies.pop(0)

    def close(self):
        pass


class TestFailurePathHardening:
    def test_worker_timeout_defaults_finite(self):
        """The regression under test: a wedged worker must never be able to
        block a query forever, so the default guard is finite, not None."""
        config = ServingConfig()
        assert config.worker_timeout == 30.0
        assert ServingConfig(worker_timeout=None).worker_timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"worker_timeout": 0.0},
            {"worker_timeout": -5.0},
            {"build_timeout": 0.0},
            {"build_timeout": -1.0},
            {"num_query_shards": 0},
            {"num_query_shards": -2},
        ],
    )
    def test_nonpositive_guards_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)

    def test_split_shards_rejects_nonpositive_counts(self):
        for bad in (0, -1, -99):
            with pytest.raises(ValueError, match="num_shards"):
                split_shards(["a", "b"], bad)

    def test_split_shards_never_produces_empty_shards(self):
        """Fewer candidates than workers: singleton shards, nothing empty."""
        for num_ids in (1, 2, 3, 5, 8):
            ids = [f"t{i}" for i in range(num_ids)]
            for num_shards in range(1, 10):
                shards = split_shards(ids, num_shards)
                assert [tid for shard in shards for tid in shard] == ids
                assert all(shard for shard in shards)
                assert len(shards) == min(num_ids, num_shards)
        assert split_shards([], 4) == []

    def test_pool_score_filters_empty_shards_before_the_pipe(
        self, serving_model
    ):
        pool = QueryWorkerPool(serving_model, num_workers=2)
        conns = [_ScriptedConn(), _ScriptedConn()]
        pool._connections = list(conns)
        pool._processes = [object(), object()]  # satisfies _require_started
        try:
            scores = pool.score(None, [[], ["a", "b"], []], timeout=1.0)
            assert scores == {"a": 0.0, "b": 0.0}
            messages = [m for conn in conns for m in conn.sent]
            assert messages == [
                ("score", None, ["a", "b"], None, {"fused": None})
            ]

            # All-empty scatter: answered locally, nothing sent at all.
            assert pool.score(None, [[], []], timeout=1.0) == {}
            assert sum(len(c.sent) for c in conns) == 1
        finally:
            pool._connections = []
            pool._processes = []

    def test_stalled_worker_times_out_and_falls_back(
        self, serving_model, serving_tables, query_charts
    ):
        """A wedged worker costs one ``worker_timeout``, never a hang: the
        query re-verifies in-process and the pool is retired (sticky)."""
        import multiprocessing

        pooled = _pooled_service(serving_model, worker_timeout=1.0)
        reference = _make_service(FCMModel(serving_model.config))
        stall_parent, stall_child = multiprocessing.Pipe()
        try:
            pooled.build(serving_tables[:5])
            reference.build(serving_tables[:5])
            pooled.query(query_charts[0], k=5)
            _skip_unless_pool_ran(pooled)

            # Wedge worker 0: its pipe is swapped for one nobody answers.
            real_conn = pooled.query_pool._connections[0]
            pooled.query_pool._connections[0] = stall_parent
            start = __import__("time").perf_counter()
            result = pooled.query(query_charts[1], k=5)  # uncached
            elapsed = __import__("time").perf_counter() - start
            real_conn.close()

            assert elapsed < 20.0  # 1s guard + in-process re-verify, no hang
            assert pooled.worker_fallback_reason is not None
            assert "timed out" in pooled.worker_fallback_reason
            assert pooled.query_pool is None
            assert pooled.stats.worker_fallbacks == 1
            _assert_rankings_match(result, reference.query(query_charts[1], k=5))
        finally:
            stall_child.close()
            pooled.close()

    def test_close_then_query_serves_in_process_without_respawn(
        self, serving_model, serving_tables, query_charts
    ):
        """The regression under test: ``close()`` used to leave the service
        armed, so the next query silently respawned a whole worker pool."""
        pooled = _pooled_service(serving_model)
        reference = _make_service(FCMModel(serving_model.config))
        pooled.build(serving_tables[:5])
        reference.build(serving_tables[:5])
        pooled.query(query_charts[0], k=5)
        pool_ran = pooled.worker_fallback_reason is None

        pooled.close()
        assert pooled.query_pool is None
        if pool_ran:
            assert pooled.worker_fallback_reason == CLOSED_FALLBACK_REASON
        fallbacks_before = pooled.stats.worker_fallbacks

        result = pooled.query(query_charts[1], k=5)  # uncached
        assert pooled.query_pool is None  # served in-process, no respawn
        # Closing is not a failure: the fallback counter must not move.
        assert pooled.stats.worker_fallbacks == fallbacks_before
        _assert_rankings_match(result, reference.query(query_charts[1], k=5))

        # reset_query_pool() is the explicit opt back in.
        pooled.reset_query_pool()
        assert pooled.worker_fallback_reason is None
        try:
            retried = pooled.query(query_charts[2], k=5)
            _assert_rankings_match(
                retried, reference.query(query_charts[2], k=5)
            )
        finally:
            pooled.close()

    def test_context_manager_exit_seals_the_service(
        self, serving_model, serving_tables, query_charts
    ):
        with _pooled_service(serving_model) as pooled:
            pooled.build(serving_tables[:5])
            pooled.query(query_charts[0], k=5)
            pool_ran = pooled.worker_fallback_reason is None
        if pool_ran:
            assert pooled.worker_fallback_reason == CLOSED_FALLBACK_REASON
        assert pooled.query(query_charts[1], k=5).ranking
        assert pooled.query_pool is None

    def test_close_without_pool_config_records_no_reason(
        self, serving_model, serving_tables, query_charts
    ):
        """An in-process service's close() is a pure no-op: nothing to seal,
        so no sticky reason appears in /metrics-style introspection."""
        service = _make_service(serving_model)
        service.build(serving_tables[:4])
        service.close()
        assert service.worker_fallback_reason is None
        assert service.query(query_charts[0], k=3).ranking

    def test_mutated_zero_shard_config_still_queries(
        self, serving_model, serving_tables, query_charts
    ):
        """Config mutated after construction (bypassing __post_init__) must
        degrade to the clamped single-shard path, not crash the query."""
        service = _make_service(serving_model)
        service.build(serving_tables[:4])
        service.config.num_query_shards = 0
        reference = _make_service(FCMModel(serving_model.config))
        reference.build(serving_tables[:4])
        _assert_rankings_match(
            service.query(query_charts[0], k=4),
            reference.query(query_charts[0], k=4),
        )
