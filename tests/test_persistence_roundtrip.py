"""Round-trip and crash-recovery properties of the snapshot formats.

``tests/test_serving.py`` pins snapshot behaviour at the service level
(queries against a restored service match the original).  This module goes
one layer down and pins the **bytes**: whatever lineage a snapshot went
through — v1 or v2 base, append-only segments, compaction, layout
migration — the restored processor's cached encodings, LSH codes and
interval set must be *identical* to the live processor's, not merely
score-equivalent.  Byte identity is the property that makes the zero-copy
mmap path trustworthy: a worker mapping the snapshot must see exactly the
arrays the parent serialised.

The second half exercises the failure surface: truncated archives, missing
or short sidecars, and simulated crashes mid-append / mid-compaction must
either leave a loadable (old or new, but consistent) snapshot behind or
fail with a structured :class:`repro.serving.SnapshotError` naming the
damaged file — never a raw ``zipfile``/NumPy traceback, and never silently
wrong data.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data import SynthConfig, synth_tables
from repro.fcm import FCMModel
from repro.index import LSHConfig
from repro.serving import (
    SNAPSHOT_VERSION,
    SNAPSHOT_VERSION_V2,
    SearchService,
    ServingConfig,
    SnapshotError,
    compact_snapshot,
    load_processor,
    save_processor,
    snapshot_encodings,
    snapshot_layout,
    snapshot_segments,
)
from repro.serving import persistence

from conftest import active_dtype

LAYOUTS = ("v1", "v2")


@pytest.fixture(scope="module")
def rt_model(tiny_fcm_config):
    return FCMModel(tiny_fcm_config)


def _corpus(num_tables: int, seed: int = 0):
    config = SynthConfig(
        num_tables=num_tables,
        num_rows=48,
        max_columns=2,
        num_clusters=4,
        seed=seed,
    )
    return list(synth_tables(config))


def _build_service(model, tables) -> SearchService:
    service = SearchService(
        model, ServingConfig(lsh_config=LSHConfig(num_bits=6, hamming_radius=1))
    )
    service.build(tables)
    return service


def _processor_state(processor):
    """Everything a snapshot must preserve, hashed down to exact bytes."""
    tables = {}
    for table_id in processor.table_ids:
        encoded = processor.scorer.encoded_table(table_id)
        tables[table_id] = (
            encoded.representations.dtype.name,
            encoded.representations.shape,
            np.ascontiguousarray(encoded.representations).tobytes(),
            np.ascontiguousarray(encoded.column_embeddings).tobytes(),
            tuple(encoded.column_names),
            tuple((float(lo), float(hi)) for lo, hi in encoded.column_ranges),
            tuple(sorted(int(code) for code in processor.lsh.codes_for(table_id))),
        )
    intervals = frozenset(
        (iv.low, iv.high, iv.table_id, iv.column_name)
        for iv in processor.interval_tree.intervals
    )
    return tables, intervals


def _assert_loaded_identical(model, path, reference_service, mmap=False):
    loaded = load_processor(model, path, mmap=mmap)
    assert _processor_state(loaded) == _processor_state(reference_service.processor)
    return loaded


def _is_mmap_backed(array: np.ndarray) -> bool:
    while isinstance(array, np.ndarray):
        if isinstance(array, np.memmap):
            return True
        array = array.base
    return False


# --------------------------------------------------------------------------- #
# Round-trip properties
# --------------------------------------------------------------------------- #
class TestRoundTripProperties:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        layout=st.sampled_from(LAYOUTS),
        num_tables=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_base_round_trip_is_byte_identical(
        self, rt_model, tmp_path, layout, num_tables, seed
    ):
        service = _build_service(rt_model, _corpus(num_tables, seed=seed))
        target = tmp_path / f"{layout}-{num_tables}-{seed}" / "index.npz"
        path = save_processor(service.processor, target, layout=layout)
        assert snapshot_layout(path) == (
            SNAPSHOT_VERSION_V2 if layout == "v2" else SNAPSHOT_VERSION
        )
        _assert_loaded_identical(rt_model, path, service)
        if layout == "v2":
            _assert_loaded_identical(rt_model, path, service, mmap=True)

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        layout=st.sampled_from(LAYOUTS),
        num_base=st.integers(min_value=2, max_value=5),
        num_added=st.integers(min_value=0, max_value=3),
        remove_one=st.booleans(),
    )
    def test_segmented_lineage_and_compaction_round_trip(
        self, rt_model, tmp_path, layout, num_base, num_added, remove_one
    ):
        """base → append(adds) → append(remove) → load/compact/migrate.

        Every stage of the lineage — segmented, compacted in place, and
        compacted into the *other* layout — restores byte-identical state.
        """
        corpus = _corpus(num_base + num_added)
        service = _build_service(rt_model, corpus[:num_base])
        stem = f"{layout}-{num_base}-{num_added}-{int(remove_one)}"
        path = save_processor(
            service.processor, tmp_path / stem / "index.npz", layout=layout
        )
        if num_added:
            service.add_tables(corpus[num_base:])
            save_processor(service.processor, path, append=True)
        if remove_one:
            service.remove_tables([corpus[0].table_id])
            save_processor(service.processor, path, append=True)

        expected_segments = int(bool(num_added)) + int(remove_one)
        assert len(snapshot_segments(path)) == expected_segments
        _assert_loaded_identical(rt_model, path, service)

        assert compact_snapshot(path) == path
        assert snapshot_segments(path) == []
        assert snapshot_layout(path) == (
            SNAPSHOT_VERSION_V2 if layout == "v2" else SNAPSHOT_VERSION
        )
        _assert_loaded_identical(rt_model, path, service)

        other = "v1" if layout == "v2" else "v2"
        compact_snapshot(path, layout=other)
        assert snapshot_layout(path) == (
            SNAPSHOT_VERSION_V2 if other == "v2" else SNAPSHOT_VERSION
        )
        _assert_loaded_identical(rt_model, path, service)

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_empty_index_round_trips(self, rt_model, tmp_path, layout):
        service = _build_service(rt_model, [])
        path = save_processor(
            service.processor, tmp_path / "empty.npz", layout=layout
        )
        loaded = load_processor(rt_model, path)
        assert loaded.table_ids == []
        assert snapshot_encodings(path) == []

    def test_v1_to_v2_migration_preserves_bytes_without_segments(
        self, rt_model, tmp_path
    ):
        """compact_snapshot(layout='v2') migrates even a segment-free base."""
        service = _build_service(rt_model, _corpus(4))
        path = save_processor(service.processor, tmp_path / "index.npz")
        assert snapshot_layout(path) == SNAPSHOT_VERSION
        compact_snapshot(path, layout="v2")
        assert snapshot_layout(path) == SNAPSHOT_VERSION_V2
        _assert_loaded_identical(rt_model, path, service, mmap=True)

    def test_v2_load_is_mmap_backed_and_read_only(self, rt_model, tmp_path):
        service = _build_service(rt_model, _corpus(3))
        path = save_processor(
            service.processor, tmp_path / "index.npz", layout="v2"
        )
        for encoded in snapshot_encodings(path, mmap=True):
            assert _is_mmap_backed(encoded.representations)
            assert _is_mmap_backed(encoded.column_embeddings)
            assert not encoded.representations.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                encoded.representations[...] = 0.0
        # The copy path hands out plain, private arrays.
        for encoded in snapshot_encodings(path, mmap=False):
            assert not _is_mmap_backed(encoded.representations)

    def test_mmap_load_of_v1_snapshot_is_rejected_with_migration_hint(
        self, rt_model, tmp_path
    ):
        service = _build_service(rt_model, _corpus(2))
        path = save_processor(service.processor, tmp_path / "index.npz")
        with pytest.raises(SnapshotError, match="layout='v2'"):
            load_processor(rt_model, path, mmap=True)
        with pytest.raises(SnapshotError, match="layout='v2'"):
            snapshot_encodings(path, mmap=True)

    def test_append_with_layout_rejected(self, rt_model, tmp_path):
        service = _build_service(rt_model, _corpus(2))
        path = save_processor(service.processor, tmp_path / "index.npz")
        with pytest.raises(ValueError, match="segment"):
            save_processor(service.processor, path, append=True, layout="v2")

    def test_v2_rejects_codes_wider_than_uint64(self, tiny_fcm_config, tmp_path):
        model = FCMModel(tiny_fcm_config)
        service = SearchService(
            model,
            ServingConfig(lsh_config=LSHConfig(num_bits=65, hamming_radius=0)),
        )
        service.build(_corpus(1))
        with pytest.raises(ValueError, match="uint64"):
            save_processor(service.processor, tmp_path / "wide.npz", layout="v2")
        # v1 stores codes as JSON integers and has no such cap.
        path = save_processor(service.processor, tmp_path / "wide.npz")
        _assert_loaded_identical(model, path, service)

    def test_unknown_layout_rejected(self, rt_model, tmp_path):
        service = _build_service(rt_model, _corpus(1))
        with pytest.raises(ValueError, match="layout"):
            save_processor(service.processor, tmp_path / "x.npz", layout="v3")

    def test_v2_single_sidecar_generation_after_rewrites(
        self, rt_model, tmp_path
    ):
        """Repeated full saves bump the generation and GC the old sidecars."""
        service = _build_service(rt_model, _corpus(3))
        path = save_processor(
            service.processor, tmp_path / "index.npz", layout="v2"
        )
        first = {p.name for _, p in persistence._sidecar_files(path)}
        service.remove_tables([service.table_ids[0]])
        save_processor(service.processor, path, layout="v2")
        second = {p.name for _, p in persistence._sidecar_files(path)}
        assert len(first) == len(second) == 5  # reps/colemb/codes/q8/qscale
        assert first.isdisjoint(second)  # fresh generation, old one deleted
        _assert_loaded_identical(rt_model, path, service, mmap=True)


# --------------------------------------------------------------------------- #
# Crash recovery: torn appends, interrupted compactions
# --------------------------------------------------------------------------- #
class TestCrashRecovery:
    def _segmented_snapshot(self, model, tmp_path, layout="v1"):
        corpus = _corpus(5)
        service = _build_service(model, corpus[:3])
        path = save_processor(
            service.processor, tmp_path / "index.npz", layout=layout
        )
        service.add_tables(corpus[3:])
        save_processor(service.processor, path, append=True)
        assert len(snapshot_segments(path)) == 1
        return service, path

    def test_leftover_tmp_file_from_crashed_append_is_ignored(
        self, rt_model, tmp_path
    ):
        """A crash before the atomic rename leaves only an inert temp file."""
        service, path = self._segmented_snapshot(rt_model, tmp_path)
        stray = path.with_name(path.stem + ".seg-0002.npz.tmp.npz")
        stray.write_bytes(b"half-written garbage")
        assert len(snapshot_segments(path)) == 1  # the stray is not a segment
        _assert_loaded_identical(rt_model, path, service)

    def test_truncated_segment_is_a_structured_error(self, rt_model, tmp_path):
        """A torn *renamed* segment (e.g. bad copy) fails loudly, by name."""
        service, path = self._segmented_snapshot(rt_model, tmp_path)
        segment = snapshot_segments(path)[0]
        segment.write_bytes(segment.read_bytes()[:128])
        with pytest.raises(SnapshotError, match=segment.name):
            load_processor(rt_model, path)

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_crash_after_compact_rewrite_before_segment_delete(
        self, rt_model, tmp_path, monkeypatch, layout
    ):
        """Replay over a compacted base is idempotent, so this crash is safe."""
        service, path = self._segmented_snapshot(rt_model, tmp_path, layout)
        expected = _processor_state(service.processor)

        original_unlink = persistence.Path.unlink

        def failing_unlink(self, *args, **kwargs):
            if ".seg-" in self.name:
                raise OSError("simulated crash before segment cleanup")
            return original_unlink(self, *args, **kwargs)

        monkeypatch.setattr(persistence.Path, "unlink", failing_unlink)
        with pytest.raises(OSError, match="simulated crash"):
            compact_snapshot(path)
        monkeypatch.undo()

        # Base is already compacted, the stale segment replays harmlessly.
        assert len(snapshot_segments(path)) == 1
        assert _processor_state(load_processor(rt_model, path)) == expected
        # Re-running the interrupted compaction completes it.
        compact_snapshot(path)
        assert snapshot_segments(path) == []
        assert _processor_state(load_processor(rt_model, path)) == expected

    def test_crash_before_v2_base_commit_keeps_old_generation(
        self, rt_model, tmp_path, monkeypatch
    ):
        """Sidecars land before the base rename; a crash between them leaves
        the old base + old sidecars fully consistent, and the orphaned new
        generation is garbage-collected by the next successful rewrite."""
        service, path = self._segmented_snapshot(rt_model, tmp_path, "v2")
        expected = _processor_state(service.processor)

        def exploding_write_archive(*args, **kwargs):
            raise RuntimeError("simulated crash before base rename")

        monkeypatch.setattr(
            persistence, "_write_archive", exploding_write_archive
        )
        with pytest.raises(RuntimeError, match="simulated crash"):
            compact_snapshot(path)
        monkeypatch.undo()

        # Old base + segment still load; the orphan sidecars are inert.
        generations = {g for g, _ in persistence._sidecar_files(path)}
        assert len(generations) == 2  # committed + orphaned
        assert _processor_state(load_processor(rt_model, path)) == expected

        compact_snapshot(path)
        assert snapshot_segments(path) == []
        assert len({g for g, _ in persistence._sidecar_files(path)}) == 1
        assert _processor_state(load_processor(rt_model, path)) == expected


# --------------------------------------------------------------------------- #
# Corruption reporting
# --------------------------------------------------------------------------- #
class TestCorruptionErrors:
    def _v2_snapshot(self, model, tmp_path):
        service = _build_service(model, _corpus(3))
        return save_processor(
            service.processor, tmp_path / "index.npz", layout="v2"
        )

    def test_snapshot_error_is_a_value_error(self):
        assert issubclass(SnapshotError, ValueError)

    def test_missing_snapshot_reports_path(self, rt_model, tmp_path):
        with pytest.raises(SnapshotError, match="no snapshot archive"):
            load_processor(rt_model, tmp_path / "nope.npz")
        with pytest.raises(SnapshotError, match="no snapshot archive"):
            snapshot_layout(tmp_path / "nope.npz")

    def test_truncated_base_archive(self, rt_model, tmp_path):
        service = _build_service(rt_model, _corpus(2))
        path = save_processor(service.processor, tmp_path / "index.npz")
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(SnapshotError, match="truncated or corrupt"):
            load_processor(rt_model, path)

    def test_garbage_base_archive(self, rt_model, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this was never an npz archive")
        with pytest.raises(SnapshotError):
            load_processor(rt_model, path)

    def test_npz_without_meta_entry(self, rt_model, tmp_path):
        path = tmp_path / "alien.npz"
        np.savez(path, payload=np.arange(3))
        with pytest.raises(SnapshotError, match="__meta__"):
            load_processor(rt_model, path)

    def test_missing_sidecar_names_the_file(self, rt_model, tmp_path):
        path = self._v2_snapshot(rt_model, tmp_path)
        victim = persistence._sidecar_files(path)[0][1]
        victim.unlink()
        with pytest.raises(SnapshotError, match=victim.name):
            load_processor(rt_model, path)

    @pytest.mark.parametrize("mmap", [False, True])
    def test_truncated_sidecar_detected_under_both_load_modes(
        self, rt_model, tmp_path, mmap
    ):
        path = self._v2_snapshot(rt_model, tmp_path)
        reps = next(
            p
            for _, p in persistence._sidecar_files(path)
            if p.name.endswith(".reps.npy")
        )
        raw = reps.read_bytes()
        reps.write_bytes(raw[: len(raw) - active_dtype().itemsize * 7])
        with pytest.raises(SnapshotError, match="truncated|corrupt"):
            load_processor(rt_model, path, mmap=mmap)

    def test_sidecar_dtype_mismatch_detected(self, rt_model, tmp_path):
        path = self._v2_snapshot(rt_model, tmp_path)
        colemb = next(
            p
            for _, p in persistence._sidecar_files(path)
            if p.name.endswith(".colemb.npy")
        )
        flat = np.load(colemb)
        other = np.float32 if flat.dtype == np.float64 else np.float64
        np.save(colemb.with_suffix(""), flat.astype(other))
        with pytest.raises(SnapshotError, match="dtype"):
            load_processor(rt_model, path)

    def test_offsets_past_sidecar_end_detected(self, rt_model, tmp_path):
        path = self._v2_snapshot(rt_model, tmp_path)
        meta, arrays = persistence._read_archive(path)
        offsets = arrays["rep_offsets"].copy()
        offsets[-1] = 10**9
        arrays["rep_offsets"] = offsets
        persistence._write_archive(path, meta, arrays)
        with pytest.raises(SnapshotError, match="points past the end"):
            load_processor(rt_model, path)

    def test_missing_v2_metadata_array_detected(self, rt_model, tmp_path):
        path = self._v2_snapshot(rt_model, tmp_path)
        meta, arrays = persistence._read_archive(path)
        arrays.pop("column_offsets")
        persistence._write_archive(path, meta, arrays)
        with pytest.raises(SnapshotError, match="column_offsets"):
            load_processor(rt_model, path)

    def test_inconsistent_v2_metadata_arrays_detected(self, rt_model, tmp_path):
        path = self._v2_snapshot(rt_model, tmp_path)
        meta, arrays = persistence._read_archive(path)
        arrays["codes_counts"] = arrays["codes_counts"][:-1]
        persistence._write_archive(path, meta, arrays)
        with pytest.raises(SnapshotError, match="disagree"):
            load_processor(rt_model, path)

    def test_v1_base_missing_rep_array_detected(self, rt_model, tmp_path):
        service = _build_service(rt_model, _corpus(2))
        path = save_processor(service.processor, tmp_path / "index.npz")
        meta, arrays = persistence._read_archive(path)
        arrays.pop("rep_1")
        persistence._write_archive(path, meta, arrays)
        with pytest.raises(SnapshotError, match="rep_1"):
            load_processor(rt_model, path)

    def test_unsupported_version_rejected(self, rt_model, tmp_path):
        service = _build_service(rt_model, _corpus(1))
        path = save_processor(service.processor, tmp_path / "index.npz")
        meta, arrays = persistence._read_archive(path)
        meta["version"] = 99
        persistence._write_archive(path, meta, arrays)
        with pytest.raises(SnapshotError, match="unsupported snapshot version"):
            load_processor(rt_model, path)


# --------------------------------------------------------------------------- #
# Streaming: segment-granular deltas and the streams registry
# --------------------------------------------------------------------------- #
class TestStreamingSnapshots:
    """Streams persist at *segment* granularity: the persisted ids are the
    window segments (plus statics), the streams registry in the meta maps
    parents back to their windows, and an append-only save after a tail
    ingest carries only the dirty windows — all byte-identical on restore,
    including the int8 quantized (q8/qscale) copies."""

    WINDOW = 32

    def _stream_service(self, model, tables):
        from repro.serving import StreamingConfig

        service = SearchService(
            model,
            ServingConfig(
                lsh_config=LSHConfig(num_bits=6, hamming_radius=1),
                streaming=StreamingConfig(segment_rows=self.WINDOW),
            ),
        )
        service.build(tables)
        return service

    def _append(self, service, size, start, seed=0):
        rng = np.random.default_rng(seed + start)
        rows = {
            "x": np.arange(start, start + size, dtype=float),
            "y": np.cumsum(rng.normal(0.0, 1.0, size)),
        }
        return service.append_rows(
            "live", rows, roles={"x": "x"} if start == 0 else None
        )

    def _stream_state(self, processor):
        """Persisted bytes: every segment + static, plus the registry.

        The quantized copy is compared through the scoring pack: a v2 load
        restores it from the q8/qscale sidecars, a v1 load rematerialises
        it from the (byte-identical) representations — either way the int8
        codes the pre-filter scores with must match the live service's.
        """
        pack = processor.scorer.quantized_pack()
        tables = {}
        for table_id in processor.persisted_table_ids:
            encoded = processor.scorer.encoded_table(table_id)
            position = pack.index[table_id]
            tables[table_id] = (
                np.ascontiguousarray(encoded.representations).tobytes(),
                np.ascontiguousarray(encoded.column_embeddings).tobytes(),
                tuple(encoded.column_names),
                tuple(sorted(int(c) for c in processor.lsh.codes_for(table_id))),
                np.ascontiguousarray(pack.codes[position]).tobytes(),
                float(pack.scales[position]),
            )
        streams = {}
        for parent, segments in processor.streams.items():
            state = processor.stream_states[parent]
            streams[parent] = (
                tuple(segments),
                int(state["total_rows"]),
                int(state["segment_rows"]),
                tuple(state["column_names"]),
                tuple(sorted(state["roles"].items())),
                tuple(
                    (name, np.asarray(vals, dtype=np.float64).tobytes())
                    for name, vals in sorted(state["tail"].items())
                ),
            )
        return tables, streams

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_stream_round_trip_is_byte_identical(self, rt_model, tmp_path, layout):
        service = self._stream_service(rt_model, _corpus(3))
        self._append(service, 48, 0)
        self._append(service, 30, 48)
        path = save_processor(
            service.processor, tmp_path / layout / "index.npz", layout=layout
        )
        loaded = load_processor(rt_model, path)
        assert self._stream_state(loaded) == self._stream_state(service.processor)
        if layout == "v2":
            mapped = load_processor(rt_model, path, mmap=True)
            assert self._stream_state(mapped) == self._stream_state(
                service.processor
            )

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_append_segment_carries_only_dirty_windows(
        self, rt_model, tmp_path, layout
    ):
        from repro.serving import segment_table_id

        service = self._stream_service(rt_model, _corpus(2))
        self._append(service, 70, 0)  # windows 0, 1, 2 (tail of 6 rows)
        path = save_processor(
            service.processor, tmp_path / layout / "index.npz", layout=layout
        )
        self._append(service, 10, 70)  # dirty: window 2 only
        segment_path = save_processor(service.processor, path, append=True)
        assert segment_path != path
        meta = persistence._read_meta(segment_path)
        delta_ids = [entry["table_id"] for entry in meta["tables"]]
        assert delta_ids == [segment_table_id("live", 2)]
        assert meta["tombstones"] == [segment_table_id("live", 2)]
        assert meta["streams"]["live"]["total_rows"] == 80
        loaded = load_processor(rt_model, path)
        assert self._stream_state(loaded) == self._stream_state(service.processor)

    def test_compaction_folds_stream_segments_with_q8_sidecars(
        self, rt_model, tmp_path
    ):
        service = self._stream_service(rt_model, _corpus(2))
        self._append(service, 70, 0)
        path = save_processor(
            service.processor, tmp_path / "index.npz", layout="v2"
        )
        self._append(service, 26, 70)
        save_processor(service.processor, path, append=True)
        assert compact_snapshot(path) == path
        assert snapshot_segments(path) == []
        sidecars = sorted(p.name for p in path.parent.glob("*.npy"))
        assert any(".q8." in name for name in sidecars)
        assert any(".qscale." in name for name in sidecars)
        mapped = load_processor(rt_model, path, mmap=True)
        assert self._stream_state(mapped) == self._stream_state(service.processor)

    def test_restored_stream_resumes_appending(self, rt_model, tmp_path):
        service = self._stream_service(rt_model, _corpus(2))
        self._append(service, 48, 0)
        path = save_processor(service.processor, tmp_path / "index.npz")
        loaded_service = SearchService.load_index(
            rt_model,
            path,
            ServingConfig(lsh_config=LSHConfig(num_bits=6, hamming_radius=1)),
        )
        ours = self._append(service, 20, 48)
        theirs = self._append(loaded_service, 20, 48)
        assert theirs.total_rows == ours.total_rows == 68
        assert theirs.dirty_segments == ours.dirty_segments
        assert self._stream_state(loaded_service.processor) == self._stream_state(
            service.processor
        )

    def test_missing_stream_segment_is_structured_error(self, rt_model, tmp_path):
        service = self._stream_service(rt_model, _corpus(1))
        self._append(service, 40, 0)
        path = save_processor(service.processor, tmp_path / "index.npz")
        meta, arrays = persistence._read_archive(path)
        meta["streams"]["live"]["segments"].append("live::seg-000099")
        persistence._write_archive(path, meta, arrays)
        with pytest.raises(SnapshotError, match="seg-000099"):
            load_processor(rt_model, path)
