"""Equivalence and perf harness for the batched training + index-build engine.

Three contracts are pinned down here, mirroring ``test_batched_inference.py``
on the gradient side of the house:

* **batched loss == per-pair loss** — ``FCMTrainer._batch_loss`` (one stacked
  forward over every (chart, table) pair of a minibatch) must reproduce the
  per-pair reference loop's loss *and every parameter gradient* within 1e-6,
  across matcher/DA variants and negative-sampling strategies;
* **chunked index build == per-table index build** —
  ``FCMScorer.index_repository`` (one padded dataset-encoder call per chunk)
  must produce the same cached encodings, LSH entries and query results as
  ``index_table`` called per table;
* **batched training is actually faster** — a 50-example synthetic training
  set asserts the advertised ≥2× epoch speed-up (skippable on constrained
  machines via ``REPRO_SKIP_PERF_TESTS=1``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.charts import ChartSpec, render_chart_for_table
from repro.data import Column, CorpusConfig, Table, filter_line_chart_records, generate_corpus
from repro.fcm import (
    FCMConfig,
    FCMModel,
    FCMScorer,
    FCMTrainer,
    TrainerConfig,
    build_training_data,
    relevance_matrix,
)
from repro.index import HybridQueryProcessor
from repro.nn import Adam, Tensor, pad, pad_stack

from conftest import dtype_tol

VARIANTS = {
    "hcman+da": dict(use_hcman=True, enable_da_layers=True),
    "hcman-only": dict(use_hcman=True, enable_da_layers=False),
    "averaged": dict(use_hcman=False, enable_da_layers=True),
}


def _tiny_config(**overrides) -> FCMConfig:
    base = dict(
        embed_dim=16,
        num_heads=2,
        num_layers=1,
        data_segment_size=32,
        beta=2,
        max_data_segments=4,
    )
    base.update(overrides)
    return FCMConfig(**base)


def _make_repository(num_tables: int, seed: int = 11):
    """Small synthetic tables with varying column counts/lengths."""
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(num_tables):
        n = int(rng.integers(60, 400))
        columns = [Column("x", np.arange(n, dtype=float), role="x")]
        for c in range(int(rng.integers(1, 5))):
            offset = float(rng.standard_normal()) * 4.0
            columns.append(
                Column(f"y{c}", offset + np.cumsum(rng.standard_normal(n)), role="y")
            )
        tables.append(Table(f"tbl{i:03d}", columns))
    return tables


# --------------------------------------------------------------------------- #
# nn-level padding primitives
# --------------------------------------------------------------------------- #
class TestPadPrimitives:
    def test_pad_values_and_shape(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        out = pad(t, [(0, 1), (1, 2)])
        assert out.shape == (3, 6)
        np.testing.assert_array_equal(out.numpy()[:2, 1:4], t.numpy())
        assert out.numpy().sum() == t.numpy().sum()

    def test_pad_noop_returns_input(self):
        t = Tensor(np.ones((2, 2)))
        assert pad(t, [(0, 0), (0, 0)]) is t

    def test_pad_validation(self):
        t = Tensor(np.ones((2, 2)))
        with pytest.raises(ValueError):
            pad(t, [(0, 1)])  # rank mismatch
        with pytest.raises(ValueError):
            pad(t, [(0, -1), (0, 0)])  # negative width

    def test_pad_gradient_slices_back(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        out = pad(t, [(0, 2), (1, 0)])
        (out * Tensor(np.arange(float(out.size)).reshape(out.shape))).sum().backward()
        expected = np.arange(16.0).reshape(4, 4)[:2, 1:]
        np.testing.assert_allclose(t.grad, expected)

    def test_pad_stack_masks(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.full((1, 5), 2.0))
        batch, mask = pad_stack([a, b])
        assert batch.shape == (2, 2, 5)
        assert mask.shape == (2, 2, 5)
        assert mask[0].sum() == 6 and mask[1].sum() == 5
        np.testing.assert_array_equal(batch.numpy()[~mask], 0.0)
        with pytest.raises(ValueError):
            pad_stack([])
        with pytest.raises(ValueError):
            pad_stack([a, Tensor(np.ones(3))])  # rank mismatch

    def test_pad_stack_accumulates_repeated_tensor_gradients(self):
        """A tensor appearing in several pairs receives the summed gradient."""
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        batch, _ = pad_stack([t, t, t])
        (batch * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 2), 6.0))


# --------------------------------------------------------------------------- #
# Batched encoder calls == per-item calls
# --------------------------------------------------------------------------- #
class TestBatchedEncoders:
    @pytest.mark.parametrize("enable_da", [True, False])
    def test_dataset_forward_many_matches_per_table(self, enable_da):
        model = FCMModel(_tiny_config(enable_da_layers=enable_da))
        model.eval()
        rng = np.random.default_rng(5)
        # Ragged (NC, N2) blocks around the config's segment geometry.
        blocks = [
            rng.standard_normal((nc, n2, 32))
            for nc, n2 in [(1, 1), (3, 2), (2, 4), (4, 3)]
        ]
        batched = model.dataset_encoder.forward_many(blocks)
        for block, out in zip(blocks, batched):
            expected = model.dataset_encoder(block)
            assert out.shape == expected.shape
            np.testing.assert_allclose(
                out.numpy(), expected.numpy(), atol=dtype_tol(1e-10, 1e-5)
            )

    def test_chart_forward_many_matches_per_chart(self):
        config = _tiny_config()
        model = FCMModel(config)
        model.eval()
        rng = np.random.default_rng(6)
        f1 = config.chart_segment_feature_dim
        n1 = config.num_chart_segments
        charts = [rng.standard_normal((m, n1, f1)) for m in (1, 3, 2)]
        batched = model.chart_encoder.forward_many(charts)
        for features, out in zip(charts, batched):
            np.testing.assert_allclose(
                out.numpy(),
                model.chart_encoder(features).numpy(),
                atol=dtype_tol(1e-10, 1e-5),
            )

    def test_forward_many_validation(self):
        model = FCMModel(_tiny_config())
        with pytest.raises(ValueError):
            model.dataset_encoder.forward_many([])
        with pytest.raises(ValueError):
            model.dataset_encoder.forward_many([np.zeros((0, 2, 32))])
        with pytest.raises(ValueError):
            model.chart_encoder.forward_many(
                [np.zeros((1, 4, 8)), np.zeros((1, 5, 8))]  # mismatched N1
            )


# --------------------------------------------------------------------------- #
# Batched training loss == per-pair reference
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def training_setup():
    """Prepared training data + ground-truth relevance for a 4-example batch."""
    config = _tiny_config()
    records = filter_line_chart_records(
        generate_corpus(CorpusConfig(num_records=6, min_rows=60, max_rows=150, seed=3))
    )
    data = build_training_data(records[:4], config, aggregated_fraction=0.5, seed=0)
    relevance, order = relevance_matrix(data.examples, data.tables, max_points=24)
    table_index = {table_id: j for j, table_id in enumerate(order)}
    return data, relevance, table_index


def _losses_and_grads(model, trainer, data, relevance, table_index, batched, seed=0):
    batch = list(range(len(data.examples)))
    table_ids = sorted({example.table_id for example in data.examples})
    model.train()
    loss_fn = trainer._batch_loss if batched else trainer._batch_loss_reference
    loss = loss_fn(batch, table_ids, data, relevance, table_index, np.random.default_rng(seed))
    model.zero_grad()
    loss.backward()
    grads = {
        name: (None if p.grad is None else p.grad.copy())
        for name, p in model.named_parameters()
    }
    return float(loss.item()), grads


class TestBatchedTrainingEquivalence:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    @pytest.mark.parametrize("strategy", ["semi-hard", "random"])
    def test_loss_and_gradients_match_reference(self, training_setup, variant, strategy):
        data, relevance, table_index = training_setup
        model = FCMModel(_tiny_config(**VARIANTS[variant]))
        trainer = FCMTrainer(
            model, TrainerConfig(epochs=1, batch_size=8, num_negatives=2, strategy=strategy)
        )
        ref_loss, ref_grads = _losses_and_grads(
            model, trainer, data, relevance, table_index, batched=False
        )
        bat_loss, bat_grads = _losses_and_grads(
            model, trainer, data, relevance, table_index, batched=True
        )
        assert bat_loss == pytest.approx(ref_loss, abs=dtype_tol(1e-6, 1e-4))
        assert set(ref_grads) == set(bat_grads)
        for name in ref_grads:
            ref, bat = ref_grads[name], bat_grads[name]
            assert (ref is None) == (bat is None), name
            if ref is not None:
                np.testing.assert_allclose(
                    bat,
                    ref,
                    atol=dtype_tol(1e-6, 1e-3),
                    rtol=dtype_tol(1e-6, 1e-2),
                    err_msg=name,
                )

    def test_one_optimizer_step_matches_reference(self, training_setup):
        """One Adam step from identical weights lands on identical parameters."""
        data, relevance, table_index = training_setup
        batch = list(range(len(data.examples)))
        table_ids = sorted({example.table_id for example in data.examples})

        results = []
        for batched in (False, True):
            model = FCMModel(_tiny_config())
            trainer = FCMTrainer(model, TrainerConfig(epochs=1, batch_size=8, num_negatives=2))
            optimizer = Adam(model.parameters(), lr=1e-3)
            model.train()
            loss_fn = trainer._batch_loss if batched else trainer._batch_loss_reference
            loss = loss_fn(
                batch, table_ids, data, relevance, table_index, np.random.default_rng(0)
            )
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            results.append(model.state_dict())
        reference, batched_state = results
        for name in reference:
            np.testing.assert_allclose(
                batched_state[name],
                reference[name],
                atol=dtype_tol(1e-8, 2e-3),
                err_msg=name,
            )

    @pytest.mark.slow
    def test_train_runs_with_either_path(self, training_setup):
        data, relevance, table_index = training_setup
        order = sorted(table_index, key=table_index.get)
        for batched in (True, False):
            model = FCMModel(_tiny_config())
            trainer = FCMTrainer(
                model,
                TrainerConfig(epochs=1, batch_size=4, num_negatives=1, batched=batched),
            )
            history = trainer.train(data, relevance=relevance, table_order=order)
            assert len(history.epochs) == 1
            assert np.isfinite(history.final_loss)


# --------------------------------------------------------------------------- #
# Chunked index build == per-table index build
# --------------------------------------------------------------------------- #
class TestBatchedIndexBuild:
    @pytest.fixture(scope="class")
    def repository(self):
        return _make_repository(12)

    @pytest.fixture(scope="class")
    def model(self):
        return FCMModel(_tiny_config())

    @pytest.fixture(scope="class")
    def per_table_scorer(self, model, repository):
        scorer = FCMScorer(model)
        for table in repository:
            scorer.index_table(table)
        return scorer

    @pytest.mark.parametrize("batch_size", [1, 4, None, 0])
    def test_cached_encodings_identical(self, model, repository, per_table_scorer, batch_size):
        scorer = FCMScorer(model)
        scorer.index_repository(repository, batch_size=batch_size)
        assert scorer.indexed_table_ids == per_table_scorer.indexed_table_ids
        for table in repository:
            batched = scorer.encoded_table(table.table_id)
            reference = per_table_scorer.encoded_table(table.table_id)
            assert batched.column_names == reference.column_names
            assert batched.column_ranges == reference.column_ranges
            np.testing.assert_allclose(
                batched.representations,
                reference.representations,
                atol=dtype_tol(1e-12, 1e-5),
            )
            np.testing.assert_allclose(
                batched.column_embeddings,
                reference.column_embeddings,
                atol=dtype_tol(1e-12, 1e-5),
            )

    def test_index_repository_is_idempotent_and_mixes_with_index_table(
        self, model, repository
    ):
        scorer = FCMScorer(model)
        scorer.index_table(repository[0])
        scorer.index_repository(repository)
        assert len(scorer.indexed_table_ids) == len(repository)
        before = scorer.encoded_table(repository[3].table_id).representations.copy()
        scorer.index_repository(repository)  # no-op second pass
        np.testing.assert_array_equal(
            scorer.encoded_table(repository[3].table_id).representations, before
        )
        # Duplicate tables inside one call are encoded once.
        scorer2 = FCMScorer(model)
        scorer2.index_repository(list(repository) + list(repository))
        assert len(scorer2.indexed_table_ids) == len(repository)

    def test_hybrid_index_queries_match_per_table_build(
        self, model, repository, per_table_scorer
    ):
        """LSH entries and query results agree between the two build paths."""
        reference = HybridQueryProcessor(per_table_scorer)
        reference.index_repository(repository)
        batched = HybridQueryProcessor(FCMScorer(model))
        batched.index_repository(repository)

        table = repository[0]
        chart = render_chart_for_table(
            table,
            [c.name for c in table.columns if c.role == "y"][:2],
            x_column="x",
            spec=ChartSpec(),
        )
        for strategy in ("interval", "lsh", "hybrid"):
            assert batched.candidates(chart, strategy) == reference.candidates(
                chart, strategy
            ), strategy
        ref_ranking = reference.query(chart, k=5, strategy="hybrid").ranking
        bat_ranking = batched.query(chart, k=5, strategy="hybrid").ranking
        assert [tid for tid, _ in bat_ranking] == [tid for tid, _ in ref_ranking]
        for (_, ref_score), (_, bat_score) in zip(ref_ranking, bat_ranking):
            assert bat_score == pytest.approx(ref_score, abs=dtype_tol(1e-10, 5e-5))


# --------------------------------------------------------------------------- #
# Perf regression: the batched trainer must beat the per-pair loop
# --------------------------------------------------------------------------- #
@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_TESTS") == "1",
    reason="perf regression thresholds disabled via REPRO_SKIP_PERF_TESTS=1 "
    "(constrained or heavily-loaded machine)",
)
class TestBatchedTrainingPerf:
    def test_batched_epoch_is_at_least_2x_faster_on_50_examples(self):
        config = _tiny_config()
        records = filter_line_chart_records(
            generate_corpus(
                CorpusConfig(num_records=60, min_rows=60, max_rows=200, seed=7)
            )
        )
        data = build_training_data(records[:50], config, aggregated_fraction=0.5, seed=0)
        assert len(data.examples) == 50
        # A synthetic relevance matrix keeps the fixture cost out of the
        # timing: negative *selection* only needs a ranking per row, and both
        # paths draw from the same matrix, so the comparison is unaffected.
        order = data.table_ids
        relevance = np.random.default_rng(0).random((len(data.examples), len(order)))

        def epoch_seconds(batched: bool):
            model = FCMModel(config)
            trainer = FCMTrainer(
                model,
                TrainerConfig(
                    epochs=1, batch_size=8, num_negatives=3, batched=batched
                ),
            )
            start = time.perf_counter()
            history = trainer.train(data, relevance=relevance, table_order=order)
            return time.perf_counter() - start, history.final_loss

        reference_seconds, reference_loss = epoch_seconds(False)
        batched_seconds, batched_loss = epoch_seconds(True)
        assert batched_loss == pytest.approx(reference_loss, abs=1e-6)
        speedup = reference_seconds / batched_seconds
        assert speedup >= 2.0, (
            f"batched training only {speedup:.2f}x faster "
            f"({reference_seconds:.2f}s vs {batched_seconds:.2f}s per epoch)"
        )
