"""Autograd engine tests: gradients are checked against finite differences."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, concatenate, stack, using_dtype, where


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x.copy())
        flat[i] = original - eps
        minus = fn(x.copy())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_fn, shape, seed=0, atol=1e-4):
    """Compare autograd and numerical gradients for a scalar expression.

    Central differences with eps=1e-6 are meaningless at float32 resolution,
    so the check always runs under the float64 policy — the backward-pass
    *formulas* it validates are dtype-independent (float32-specific behaviour
    is covered by tests/test_dtype_policy.py).
    """
    with using_dtype(np.float64):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(shape)
        tensor = Tensor(x.copy(), requires_grad=True)
        out = build_fn(tensor)
        out.backward()

        def scalar_fn(values):
            return build_fn(Tensor(values)).item()

        numeric = numerical_gradient(scalar_fn, x.copy())
        np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-3)


class TestBasicOps:
    def test_add_and_mul_gradients(self):
        check_gradient(lambda t: ((t * 3.0 + 1.5) * t).sum(), (4, 3))

    def test_sub_div_gradients(self):
        check_gradient(lambda t: ((t - 2.0) / 3.0).sum(), (5,))

    def test_pow_gradient(self):
        check_gradient(lambda t: (t ** 3).sum(), (3, 2))

    def test_exp_log_gradient(self):
        check_gradient(lambda t: (t.exp() + (t * t + 1.0).log()).sum(), (4,))

    def test_sqrt_gradient(self):
        check_gradient(lambda t: ((t * t + 1.0).sqrt()).sum(), (3, 3))

    def test_tanh_sigmoid_gradient(self):
        check_gradient(lambda t: (t.tanh() * t.sigmoid()).sum(), (6,))

    def test_relu_and_leaky_relu(self):
        x = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)
        out = x.relu().sum()
        out.backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 1.0, 1.0])
        y = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        y.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(y.grad, [0.1, 1.0])

    def test_gelu_gradient(self):
        check_gradient(lambda t: t.gelu().sum(), (5,), atol=1e-3)

    def test_abs_and_clip(self):
        check_gradient(lambda t: (t.abs() + t.clip(-0.5, 0.5)).sum(), (7,))

    def test_rsub_rdiv(self):
        x = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        out = (1.0 - x).sum() + (8.0 / x).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, [-1.0 - 8.0 / 4.0, -1.0 - 8.0 / 16.0])


class TestMatmulAndReductions:
    def test_matmul_gradient_2d(self):
        rng = np.random.default_rng(0)
        b = rng.standard_normal((3, 4))
        check_gradient(lambda t: (t.matmul(Tensor(b))).sum(), (2, 3))

    def test_matmul_gradient_batched(self):
        rng = np.random.default_rng(1)
        b = rng.standard_normal((2, 4, 5))
        check_gradient(lambda t: (t.matmul(Tensor(b))).sum(), (2, 3, 4))

    def test_matmul_vector_cases(self):
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        m = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        out = a.matmul(m).sum()
        out.backward()
        assert a.grad.shape == (3,)
        assert m.grad.shape == (3, 4)

    def test_sum_mean_axis_gradients(self):
        check_gradient(lambda t: t.sum(axis=0).sum() + t.mean(axis=1).sum(), (3, 4))

    def test_max_gradient_routes_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 3.0], [2.0, 0.0, 7.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        expected = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        np.testing.assert_allclose(x.grad, expected)

    def test_min_matches_negated_max(self):
        x = np.array([[1.0, -5.0], [2.0, 0.5]])
        assert Tensor(x).min().item() == pytest.approx(-5.0)

    def test_var_non_negative(self):
        x = Tensor(np.random.default_rng(2).standard_normal((6, 3)))
        assert float(x.var().item()) >= 0.0


class TestShapeOps:
    def test_reshape_transpose_gradients(self):
        check_gradient(lambda t: (t.reshape(6, 2).transpose(1, 0) * 2.0).sum(), (3, 4))

    def test_getitem_gradient(self):
        x = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        x[1:, :2].sum().backward()
        expected = np.zeros((3, 4))
        expected[1:, :2] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_expand_squeeze(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        out = x.expand_dims(0).squeeze(axis=0).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_swapaxes(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert x.swapaxes(0, 1).shape == (3, 2)

    def test_concatenate_and_stack_gradients(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((2, 3)) * 2, requires_grad=True)
        concatenate([a, b], axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 3)))
        a.zero_grad(), b.zero_grad()
        (stack([a, b], axis=0) * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, 3 * np.ones((2, 3)))

    def test_where_gradient(self):
        a = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0, 30.0]), requires_grad=True)
        cond = np.array([True, False, True])
        where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestSoftmaxAndBroadcasting:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(3).standard_normal((5, 7)))
        probs = x.softmax(axis=-1).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(5), atol=1e-12)

    def test_softmax_gradient(self):
        check_gradient(lambda t: (t.softmax(axis=-1) * np.arange(4)).sum(), (3, 4))

    def test_log_softmax_gradient(self):
        check_gradient(lambda t: (t.log_softmax(axis=-1)[..., 0]).sum(), (3, 4))

    def test_broadcast_add_gradient_shapes(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (4, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])

    def test_broadcast_mul_keepdims(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        b = Tensor(np.ones((1, 3, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (1, 3, 1)
        np.testing.assert_allclose(b.grad, np.full((1, 3, 1), 8.0))


class TestBackwardSemantics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_backward_nonscalar_needs_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_gradient_accumulation(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2).sum()
        y.backward()
        z = (x * 3).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [5.0, 5.0, 5.0])

    def test_detach_stops_gradient(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x.detach() * x).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0, 1.0])

    def test_shared_subexpression(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x
        (y + y).sum().backward()
        np.testing.assert_allclose(x.grad, [8.0])

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_unbroadcast_preserves_shape(self, rows, cols):
        a = Tensor(np.ones((rows, cols)), requires_grad=True)
        b = Tensor(np.ones((cols,)), requires_grad=True)
        (a * b + b).sum().backward()
        assert a.grad.shape == (rows, cols)
        assert b.grad.shape == (cols,)
