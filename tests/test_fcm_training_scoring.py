"""Tests for negative sampling, the FCM trainer and the query-time scorer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.charts import render_chart_for_table
from repro.fcm import (
    FCMModel,
    FCMScorer,
    FCMTrainer,
    TrainerConfig,
    build_scorer_for_repository,
    build_training_data,
    ground_truth_relevance,
    relevance_matrix,
    select_negatives,
    train_fcm,
)
from repro.fcm.sampling import batch_indices
from repro.nn import save_state_dict, load_state_dict
from repro.relevance import clear_relevance_cache, relevance_cache_info


class TestNegativeSampling:
    def setup_method(self):
        self.relevance = np.array([0.9, 0.1, 0.5, 0.7, 0.3, 0.6])
        self.positive = 0

    def test_hard_selects_highest(self):
        chosen = select_negatives(self.relevance, self.positive, 2, strategy="hard")
        assert chosen == [3, 5]

    def test_easy_selects_lowest(self):
        chosen = select_negatives(self.relevance, self.positive, 2, strategy="easy")
        assert set(chosen) == {1, 4}

    def test_semi_hard_selects_middle(self):
        chosen = select_negatives(self.relevance, self.positive, 2, strategy="semi-hard")
        ranked = [3, 5, 2, 4, 1]
        middle = ranked[len(ranked) // 2]
        assert middle in chosen

    def test_random_is_reproducible_and_excludes_positive(self):
        rng = np.random.default_rng(0)
        chosen = select_negatives(self.relevance, self.positive, 3, strategy="random", rng=rng)
        assert self.positive not in chosen and len(chosen) == 3

    def test_clipping_and_validation(self):
        assert len(select_negatives(self.relevance, 0, 10)) == 5
        assert select_negatives(np.array([1.0]), 0, 3) == []
        with pytest.raises(ValueError):
            select_negatives(self.relevance, 0, 2, strategy="bogus")

    def test_batch_indices_cover_everything(self):
        batches = batch_indices(10, 3, np.random.default_rng(0))
        flattened = sorted(int(i) for batch in batches for i in batch)
        assert flattened == list(range(10))
        with pytest.raises(ValueError):
            batch_indices(10, 0, np.random.default_rng(0))


class TestTrainingData:
    def test_build_training_data(self, small_records, tiny_fcm_config):
        data = build_training_data(small_records[:5], tiny_fcm_config, aggregated_fraction=0.5, seed=0)
        assert len(data.examples) == 5
        assert set(data.table_inputs) == set(data.tables)
        aggregated = [ex for ex in data.examples if ex.is_aggregated]
        plain = [ex for ex in data.examples if not ex.is_aggregated]
        assert aggregated or plain  # at least one of each kind is likely but not guaranteed

    def test_ground_truth_relevance_prefers_source(self, small_records):
        record = small_records[0]
        chart = render_chart_for_table(
            record.table, list(record.spec.y_columns), x_column=record.spec.x_column
        )
        own = ground_truth_relevance(chart.underlying, record.table, max_points=32)
        other = ground_truth_relevance(chart.underlying, small_records[1].table, max_points=32)
        assert own >= other

    def test_relevance_matrix_shape_and_diagonal_dominance(self, small_records, tiny_fcm_config):
        data = build_training_data(small_records[:4], tiny_fcm_config, aggregated_fraction=0.0, seed=0)
        matrix, order = relevance_matrix(data.examples, data.tables, max_points=32)
        assert matrix.shape == (4, 4)
        for i, example in enumerate(data.examples):
            j = order.index(example.table_id)
            assert matrix[i, j] == pytest.approx(matrix[i].max(), rel=1e-6)

    def test_parallel_relevance_matrix_identical_to_serial(
        self, small_records, tiny_fcm_config
    ):
        """The multi-process cold pass returns the exact serial matrix."""
        data = build_training_data(
            small_records[:5], tiny_fcm_config, aggregated_fraction=0.0, seed=0
        )
        clear_relevance_cache()
        serial, serial_order = relevance_matrix(data.examples, data.tables, max_points=24)
        clear_relevance_cache()
        parallel, parallel_order = relevance_matrix(
            data.examples, data.tables, max_points=24, num_workers=2
        )
        assert parallel_order == serial_order
        np.testing.assert_array_equal(parallel, serial)
        # The parallel pass back-fills the parent memo, so a warm
        # recomputation (cross-strategy reuse) is a pure cache hit — even a
        # warm *parallel* call is served from the memo without a pool.
        info_before = relevance_cache_info()
        warm, _ = relevance_matrix(data.examples, data.tables, max_points=24)
        np.testing.assert_array_equal(warm, serial)
        assert relevance_cache_info().hits >= info_before.hits + serial.size
        warm_parallel, _ = relevance_matrix(
            data.examples, data.tables, max_points=24, num_workers=2
        )
        np.testing.assert_array_equal(warm_parallel, serial)

    def test_parallel_relevance_matrix_falls_back_in_process(
        self, small_records, tiny_fcm_config, monkeypatch
    ):
        """A broken pool degrades to the serial pass instead of failing."""
        import repro.fcm.training as training_module

        data = build_training_data(
            small_records[:3], tiny_fcm_config, aggregated_fraction=0.0, seed=0
        )
        expected, expected_order = relevance_matrix(data.examples, data.tables, max_points=24)

        def broken_pool(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(training_module, "ProcessPoolExecutor", broken_pool)
        clear_relevance_cache()  # cold: force the (broken) pool path
        matrix, order = relevance_matrix(
            data.examples, data.tables, max_points=24, num_workers=4
        )
        assert order == expected_order
        np.testing.assert_array_equal(matrix, expected)


@pytest.mark.slow
class TestTrainer:
    @pytest.fixture(scope="class")
    def trained(self, small_records, tiny_fcm_config):
        model, history, data = train_fcm(
            small_records[:5],
            config=tiny_fcm_config,
            trainer_config=TrainerConfig(epochs=2, batch_size=4, num_negatives=2, learning_rate=2e-3),
            aggregated_fraction=0.5,
        )
        return model, history, data

    def test_history_has_expected_epochs(self, trained):
        _, history, _ = trained
        assert len(history.epochs) == 2
        assert all(np.isfinite(loss) for loss in history.losses)
        assert history.final_loss == history.losses[-1]

    def test_parameters_changed_during_training(self, small_records, tiny_fcm_config):
        data = build_training_data(small_records[:4], tiny_fcm_config, seed=0)
        model = FCMModel(tiny_fcm_config)
        before = {name: p.data.copy() for name, p in model.named_parameters()}
        trainer = FCMTrainer(model, TrainerConfig(epochs=1, batch_size=4, num_negatives=1))
        trainer.train(data)
        changed = any(
            not np.allclose(before[name], p.data) for name, p in model.named_parameters()
        )
        assert changed

    def test_eval_callback_recorded(self, small_records, tiny_fcm_config):
        data = build_training_data(small_records[:4], tiny_fcm_config, seed=0)
        model = FCMModel(tiny_fcm_config)
        trainer = FCMTrainer(model, TrainerConfig(epochs=2, batch_size=4, num_negatives=1))
        history = trainer.train(data, eval_fn=lambda m: 0.5)
        assert history.eval_metrics == [0.5, 0.5]

    def test_trainer_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(strategy="bogus")
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(num_negatives=0)

    def test_model_round_trips_through_serialization(self, trained, tmp_path):
        model, _, data = trained
        example = data.examples[0]
        score_before = model.relevance(example.chart_input, data.table_inputs[example.table_id])
        path = save_state_dict(model, tmp_path / "fcm.npz")
        clone = FCMModel(model.config)
        load_state_dict(clone, path)
        score_after = clone.relevance(example.chart_input, data.table_inputs[example.table_id])
        assert score_after == pytest.approx(score_before, rel=1e-9)


class TestScorer:
    @pytest.fixture(scope="class")
    def scorer_setup(self, small_records, tiny_fcm_config):
        model = FCMModel(tiny_fcm_config)
        tables = [r.table for r in small_records[:6]]
        from repro.data import DataRepository

        repository = DataRepository(tables)
        scorer = build_scorer_for_repository(model, repository)
        record = small_records[0]
        chart = render_chart_for_table(
            record.table,
            list(record.spec.y_columns),
            x_column=record.spec.x_column,
            spec=tiny_fcm_config.chart_spec,
        )
        return scorer, chart, tables

    def test_indexing_is_idempotent(self, scorer_setup):
        scorer, _, tables = scorer_setup
        count = len(scorer.indexed_table_ids)
        scorer.index_table(tables[0])
        assert len(scorer.indexed_table_ids) == count

    def test_scores_cover_all_tables_and_are_bounded(self, scorer_setup):
        scorer, chart, tables = scorer_setup
        scores = scorer.score_chart(chart)
        assert set(scores) == {t.table_id for t in tables}
        assert all(0.0 <= s <= 1.0 for s in scores.values())

    def test_rank_ordering_and_top_k(self, scorer_setup):
        scorer, chart, _ = scorer_setup
        ranked = scorer.rank(chart)
        values = [score for _, score in ranked]
        assert values == sorted(values, reverse=True)
        assert len(scorer.top_k_ids(chart, k=3)) == 3

    def test_unknown_table_raises(self, scorer_setup):
        scorer, _, _ = scorer_setup
        with pytest.raises(KeyError):
            scorer.encoded_table("nope")

    def test_subset_scoring(self, scorer_setup):
        scorer, chart, tables = scorer_setup
        subset = [tables[0].table_id, tables[1].table_id]
        scores = scorer.score_chart(chart, table_ids=subset)
        assert set(scores) == set(subset)
