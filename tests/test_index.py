"""Tests for the interval tree, LSH, and the hybrid query processor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.charts import render_chart_for_table
from repro.data import Column, DataRepository, Table
from repro.fcm import FCMModel, FCMScorer
from repro.index import (
    HybridQueryProcessor,
    INDEXING_STRATEGIES,
    Interval,
    IntervalTree,
    LSHConfig,
    RandomHyperplaneLSH,
    build_interval_index,
)


class TestIntervalTree:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            Interval(low=2.0, high=1.0, table_id="t", column_name="c")

    def test_basic_overlap_queries(self):
        tree = IntervalTree(
            [
                Interval(0.0, 5.0, "a", "c1"),
                Interval(10.0, 20.0, "b", "c1"),
                Interval(4.0, 12.0, "c", "c1"),
            ]
        )
        assert tree.query_table_ids(4.5, 4.6) == {"a", "c"}
        assert tree.query_table_ids(15.0, 16.0) == {"b"}
        assert tree.query_table_ids(100.0, 200.0) == set()
        assert tree.query_table_ids(5.0, 6.0) == {"a", "c"}

    def test_query_reversed_bounds(self):
        tree = IntervalTree([Interval(0.0, 5.0, "a", "c")])
        assert tree.query_table_ids(3.0, 1.0) == {"a"}

    def test_add_table_uses_min_sum_interval(self, simple_table):
        tree = IntervalTree()
        tree.add_table(simple_table)
        tree.build()
        assert len(tree) == simple_table.num_columns
        # Every column interval must cover [min, max] of the raw values.
        for interval in tree.intervals:
            column = simple_table.column(interval.column_name)
            assert interval.low <= column.min
            assert interval.high >= column.max

    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False), st.floats(0, 50, allow_nan=False)
            ),
            min_size=1,
            max_size=40,
        ),
        st.floats(-120, 120, allow_nan=False),
        st.floats(0, 60, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_never_misses_an_overlap(self, raw_intervals, query_low, query_span):
        """Property: the tree's answer equals the brute-force answer exactly."""
        intervals = [
            Interval(low, low + span, f"t{i}", "c")
            for i, (low, span) in enumerate(raw_intervals)
        ]
        tree = IntervalTree(intervals)
        query_high = query_low + query_span
        expected = {iv.table_id for iv in intervals if iv.overlaps(query_low, query_high)}
        assert tree.query_table_ids(query_low, query_high) == expected

    def test_build_interval_index_over_repository(self, small_records):
        tables = [r.table for r in small_records[:4]]
        tree = build_interval_index(tables)
        # A query covering everything returns every table.
        lows = [c.index_interval()[0] for t in tables for c in t.columns]
        highs = [c.index_interval()[1] for t in tables for c in t.columns]
        assert tree.query_table_ids(min(lows), max(highs)) == {t.table_id for t in tables}


class TestLSH:
    def test_hash_is_deterministic(self):
        lsh = RandomHyperplaneLSH(8, LSHConfig(num_bits=8, seed=1))
        vector = np.random.default_rng(0).standard_normal(8)
        assert lsh.hash_vector(vector) == lsh.hash_vector(vector)

    def test_dimension_validation(self):
        lsh = RandomHyperplaneLSH(4)
        with pytest.raises(ValueError):
            lsh.hash_vector(np.zeros(5))
        with pytest.raises(ValueError):
            RandomHyperplaneLSH(0)
        with pytest.raises(ValueError):
            LSHConfig(num_bits=0)

    def test_identical_vectors_collide(self):
        lsh = RandomHyperplaneLSH(16, LSHConfig(num_bits=10, hamming_radius=0))
        vector = np.random.default_rng(1).standard_normal(16)
        lsh.add("a", vector[None, :])
        lsh.add("b", vector[None, :])
        assert lsh.query(vector[None, :]) == {"a", "b"}

    def test_similar_vectors_more_likely_to_collide_than_dissimilar(self):
        rng = np.random.default_rng(2)
        lsh = RandomHyperplaneLSH(32, LSHConfig(num_bits=10, hamming_radius=1, seed=3))
        base = rng.standard_normal(32)
        similar = base + 0.01 * rng.standard_normal(32)
        opposite = -base
        lsh.add("similar", similar[None, :])
        lsh.add("opposite", opposite[None, :])
        hits = lsh.query(base[None, :])
        assert "similar" in hits
        assert "opposite" not in hits

    def test_hamming_distance(self):
        assert RandomHyperplaneLSH.hamming_distance(0b1010, 0b0010) == 1
        assert RandomHyperplaneLSH.hamming_distance(0, 0) == 0


class TestHybridProcessor:
    @pytest.fixture(scope="class")
    def processor_setup(self, small_records, tiny_fcm_config):
        tables = [r.table for r in small_records[:6]]
        repository = DataRepository(tables)
        model = FCMModel(tiny_fcm_config)
        scorer = FCMScorer(model)
        processor = HybridQueryProcessor(scorer, lsh_config=LSHConfig(num_bits=6, hamming_radius=2))
        processor.index_repository(repository.tables)
        record = small_records[0]
        chart = render_chart_for_table(
            record.table,
            list(record.spec.y_columns),
            x_column=record.spec.x_column,
            spec=tiny_fcm_config.chart_spec,
        )
        return processor, chart, tables, record

    def test_build_stats(self, processor_setup):
        processor, _, tables, _ = processor_setup
        assert processor.build_stats.num_tables == len(tables)
        assert processor.build_stats.interval_seconds >= 0

    def test_all_strategies_return_results(self, processor_setup):
        processor, chart, tables, _ = processor_setup
        for strategy in INDEXING_STRATEGIES:
            result = processor.query(chart, k=3, strategy=strategy)
            assert len(result.ranking) <= 3
            assert 0 < result.candidates <= len(tables)
            assert result.seconds >= 0
            assert 0.0 <= result.pruned_fraction <= 1.0

    def test_interval_strategy_keeps_source_table(self, processor_setup):
        """The interval tree must never prune the query's own source table."""
        processor, chart, _, record = processor_setup
        candidates = processor.candidates(chart, "interval")
        assert record.table.table_id in candidates

    def test_candidate_monotonicity(self, processor_setup):
        """Hybrid candidates are a subset of each individual strategy's."""
        processor, chart, _, _ = processor_setup
        interval = processor.candidates(chart, "interval")
        lsh = processor.candidates(chart, "lsh")
        hybrid = processor.candidates(chart, "hybrid")
        none = processor.candidates(chart, "none")
        assert hybrid <= interval and hybrid <= lsh
        assert interval <= none and lsh <= none

    def test_unknown_strategy_rejected(self, processor_setup):
        processor, chart, _, _ = processor_setup
        with pytest.raises(ValueError):
            processor.candidates(chart, "bogus")


class TestLSHBucketRecall:
    """Regression pin: hashing quality on a corpus with known neighbours.

    ``clustered_embeddings`` plants explicit cluster structure (measured
    within-cluster cosine ≈ 0.99 at this noise level, ≈ 0 across), so the
    true top-k of every query demonstrably sits in one bucket
    neighbourhood.  Two bounds hold simultaneously:

    * **recall floor** — a change to the hyperplane draw, the code packing
      or the Hamming-ball probe that degrades bucket quality drops recall
      below 0.95 and fails loudly;
    * **candidate-fraction ceiling** — recall achieved by returning most of
      the corpus is vacuous (an untrained encoder collapsing all embeddings
      to one bucket would "recall" everything), so the same run must also
      prune ≥ 75% of the corpus.

    Deterministic: fixed corpus seed, fixed hyperplane seed, fixed query
    perturbations.
    """

    NUM_VECTORS = 500
    EMBED_DIM = 16
    NUM_CLUSTERS = 25
    NOISE = 0.05
    TOP_K = 10
    RECALL_FLOOR = 0.95
    CANDIDATE_FRACTION_CEILING = 0.25

    def _corpus_and_lsh(self):
        from repro.data import clustered_embeddings

        vectors, labels = clustered_embeddings(
            self.NUM_VECTORS,
            self.EMBED_DIM,
            num_clusters=self.NUM_CLUSTERS,
            noise=self.NOISE,
            seed=7,
        )
        lsh = RandomHyperplaneLSH(
            self.EMBED_DIM, LSHConfig(num_bits=16, hamming_radius=4, seed=0)
        )
        for i, vector in enumerate(vectors):
            lsh.add(f"t{i:03d}", vector.reshape(1, -1))
        return vectors, labels, lsh

    def test_bucket_recall_meets_floor_without_vacuous_candidates(self):
        vectors, labels, lsh = self._corpus_and_lsh()
        prototypes = {}
        for i, label in enumerate(labels):
            prototypes.setdefault(int(label), vectors[i])
        normalised = vectors / np.linalg.norm(vectors, axis=1, keepdims=True)
        rng = np.random.default_rng(123)
        recalls, fractions = [], []
        for query_number in range(50):
            label = query_number % self.NUM_CLUSTERS
            query = prototypes[label] + self.NOISE * rng.normal(size=self.EMBED_DIM)
            sims = normalised @ (query / np.linalg.norm(query))
            true_top = set(np.argsort(-sims)[: self.TOP_K])
            candidates = lsh.query(query.reshape(1, -1))
            candidate_indices = {int(c[1:]) for c in candidates}
            recalls.append(len(true_top & candidate_indices) / self.TOP_K)
            fractions.append(len(candidates) / self.NUM_VECTORS)
        mean_recall = float(np.mean(recalls))
        mean_fraction = float(np.mean(fractions))
        assert mean_recall >= self.RECALL_FLOOR, (
            f"LSH bucket recall regressed: {mean_recall:.3f} < "
            f"{self.RECALL_FLOOR} (candidate fraction {mean_fraction:.3f})"
        )
        assert mean_fraction <= self.CANDIDATE_FRACTION_CEILING, (
            f"recall {mean_recall:.3f} is vacuous: candidate set covers "
            f"{mean_fraction:.1%} of the corpus"
        )

    def test_cluster_structure_is_actually_present(self):
        """Guard the guard: the corpus the pin relies on has real structure."""
        vectors, labels, _ = self._corpus_and_lsh()
        normalised = vectors / np.linalg.norm(vectors, axis=1, keepdims=True)
        sims = normalised @ normalised.T
        same = labels[:, None] == labels[None, :]
        off_diagonal = ~np.eye(len(vectors), dtype=bool)
        within = float(sims[same & off_diagonal].mean())
        across = float(sims[~same].mean())
        assert within > 0.9
        assert abs(across) < 0.1
