"""Tests for the configurable-precision numeric core (``repro.nn.dtype``).

Covers the policy mechanics (default / set / scoped override / env
variable), dtype stability of the engine (no silent promotion, float64
accumulation in reductions), parameter + optimizer state precision,
checkpoint and snapshot dtype round trips, and the float32-vs-float64
ranking-parity contract on a quickstart-sized corpus.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.charts import render_chart_for_table
from repro.data import CorpusConfig, filter_line_chart_records, generate_corpus
from repro.fcm import FCMConfig, FCMModel, FCMScorer
from repro.index import HybridQueryProcessor
from repro.nn import (
    Adam,
    Linear,
    Parameter,
    Sequential,
    Tensor,
    default_dtype,
    load_state_dict,
    resolve_dtype,
    save_state_dict,
    set_default_dtype,
    using_dtype,
)
from repro.serving import SearchService, ServingConfig, save_processor, load_processor


TINY = dict(
    embed_dim=16, num_heads=2, num_layers=1, data_segment_size=32, beta=2,
    max_data_segments=4,
)


@pytest.fixture()
def quickstart_tables(small_records):
    return [record.table for record in small_records]


@pytest.fixture()
def query_chart(small_records):
    record = small_records[0]
    return render_chart_for_table(
        record.table, list(record.spec.y_columns), x_column=record.spec.x_column
    )


# --------------------------------------------------------------------------- #
# Policy mechanics
# --------------------------------------------------------------------------- #
class TestPolicyMechanics:
    def test_resolve_rejects_unsupported(self):
        with pytest.raises(ValueError):
            resolve_dtype(np.float16)
        with pytest.raises(ValueError):
            resolve_dtype("int64")
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float64) == np.float64

    def test_set_default_returns_previous_and_using_restores(self):
        before = default_dtype()
        previous = set_default_dtype("float32")
        try:
            assert previous == before
            assert default_dtype() == np.float32
        finally:
            set_default_dtype(previous)
        with using_dtype("float32"):
            assert default_dtype() == np.float32
            with using_dtype("float64"):
                assert default_dtype() == np.float64
            assert default_dtype() == np.float32
        assert default_dtype() == before

    def test_env_override_sets_process_default(self):
        env = dict(os.environ, REPRO_DTYPE="float32")
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [sys.executable, "-c", "import repro.nn; print(repro.nn.default_dtype())"],
            capture_output=True, text=True, env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "float32"

    def test_invalid_env_override_raises(self):
        env = dict(os.environ, REPRO_DTYPE="float16")
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [sys.executable, "-c", "import repro.nn"],
            capture_output=True, text=True, env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
        )
        assert out.returncode != 0
        assert "REPRO_DTYPE" in out.stderr


# --------------------------------------------------------------------------- #
# Engine dtype stability
# --------------------------------------------------------------------------- #
class TestEngineDtype:
    def test_tensor_creation_follows_policy(self):
        with using_dtype("float32"):
            assert Tensor([1.0, 2.0]).dtype == np.float32
            assert Tensor.zeros((2, 2)).dtype == np.float32
            assert Tensor.ones((2,)).dtype == np.float32
            assert Tensor.randn((3,)).dtype == np.float32
        assert Tensor([1.0]).dtype == default_dtype()

    def test_ops_do_not_promote_float32(self):
        with using_dtype("float32"):
            x = Tensor.randn((4, 4), rng=np.random.default_rng(0), requires_grad=True)
            y = ((x * 2.0 + 1.0) / 3.0 - 0.5).gelu().tanh().sigmoid()
            z = (y @ y).softmax(axis=-1).log_softmax(axis=-1)
            s = (z.sum() + z.mean() + z.var()).abs().sqrt()
            assert y.dtype == np.float32
            assert z.dtype == np.float32
            assert s.dtype == np.float32
            s.backward()
            assert x.grad.dtype == np.float32

    def test_scalar_lifting_follows_operand_not_policy(self):
        # A float32 graph stays float32 even when the ambient policy is
        # float64 (per-model precision support).
        x = Tensor(np.ones(3, dtype=np.float32), dtype=np.float32)
        assert (x * 2.0).dtype == np.float32
        assert (1.0 - x).dtype == np.float32
        assert (x + np.ones(3)).dtype == np.float32  # array operand lifted too

    def test_randn_value_stream_identical_across_dtypes(self):
        draw64 = Tensor.randn((8,), rng=np.random.default_rng(7), dtype="float64")
        draw32 = Tensor.randn((8,), rng=np.random.default_rng(7), dtype="float32")
        np.testing.assert_array_equal(
            draw64.numpy().astype(np.float32), draw32.numpy()
        )

    def test_sum_accumulates_in_float64(self):
        # Implementation contract: reductions use a float64 accumulator and
        # round once at the end, so the float32 sum equals the rounded
        # float64 sum (a naive float32 running sum generally does not).
        values = (np.arange(100_000) % 7).astype(np.float32) * 0.1
        expected = np.float32(values.sum(dtype=np.float64))
        got = Tensor(values, dtype=np.float32).sum().numpy()
        assert got.dtype == np.float32
        assert got == expected

    def test_astype_is_differentiable(self):
        x = Tensor(np.ones(4, dtype=np.float64), requires_grad=True, dtype="float64")
        y = x.astype("float32") * 2.0
        assert y.dtype == np.float32
        y.sum().backward()
        assert x.grad.dtype == np.float64
        np.testing.assert_allclose(x.grad, np.full(4, 2.0))
        assert x.astype("float64") is x  # matching cast is a no-op


# --------------------------------------------------------------------------- #
# Parameters, optimizer state, checkpoints
# --------------------------------------------------------------------------- #
class TestParameterAndOptimizerDtype:
    def test_parameters_and_adam_state_follow_policy(self):
        with using_dtype("float32"):
            model = Sequential(Linear(4, 4), Linear(4, 2))
            assert model.dtype == np.float32
            optimizer = Adam(model.parameters(), lr=1e-3)
            x = Tensor.randn((3, 4), rng=np.random.default_rng(0))
            loss = (model(x) ** 2).mean()
            loss.backward()
            optimizer.step()
            for param, m, v in zip(optimizer.parameters, optimizer._m, optimizer._v):
                assert param.data.dtype == np.float32
                assert param.grad.dtype == np.float32
                assert m.dtype == np.float32 and v.dtype == np.float32

    def test_parameter_nbytes_halves_under_float32(self):
        with using_dtype("float64"):
            wide = Sequential(Linear(32, 32))
        with using_dtype("float32"):
            narrow = Sequential(Linear(32, 32))
        assert wide.parameter_nbytes() == 2 * narrow.parameter_nbytes()

    def test_to_dtype_casts_in_place(self):
        with using_dtype("float64"):
            model = Sequential(Linear(4, 4))
        model.to_dtype("float32")
        assert model.dtype == np.float32

    def test_checkpoint_roundtrip_same_dtype_float32(self, tmp_path):
        with using_dtype("float32"):
            model = Sequential(Linear(4, 4))
            path = save_state_dict(model, tmp_path / "f32.npz")
            clone = Sequential(Linear(4, 4))
            metadata = load_state_dict(clone, path)
        assert metadata["dtype"] == "float32"
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            assert b.data.dtype == np.float32
            np.testing.assert_array_equal(a.data, b.data)

    def test_checkpoint_float64_loads_and_casts_into_float32(self, tmp_path):
        with using_dtype("float64"):
            source = Sequential(Linear(4, 4))
            path = save_state_dict(source, tmp_path / "f64.npz")
        with using_dtype("float32"):
            target = Sequential(Linear(4, 4))
        metadata = load_state_dict(target, path)
        assert metadata["dtype"] == "float64"
        assert target.dtype == np.float32
        for (_, a), (_, b) in zip(source.named_parameters(), target.named_parameters()):
            np.testing.assert_array_equal(a.data.astype(np.float32), b.data)

    def test_checkpoint_reserved_metadata_key_rejected(self, tmp_path):
        model = Sequential(Linear(2, 2))
        with pytest.raises(ValueError):
            save_state_dict(model, tmp_path / "bad.npz", metadata={"dtype": "x"})


# --------------------------------------------------------------------------- #
# FCM model pinning + index/serving dtype threading
# --------------------------------------------------------------------------- #
class TestModelDtypePinning:
    def test_model_pins_policy_dtype_onto_config(self):
        with using_dtype("float32"):
            model = FCMModel(FCMConfig(**TINY))
        assert model.config.dtype == "float32"
        assert model.dtype == np.float32
        # Pinned: the model keeps its precision when the policy changes.
        assert model.config.numeric_dtype == np.float32

    def test_explicit_config_dtype_wins_over_policy(self):
        model = FCMModel(FCMConfig(dtype="float32", **TINY))
        assert model.dtype == np.float32
        assert model.config.dtype == "float32"

    def test_pinned_float32_model_computes_float32_under_float64_policy(
        self, quickstart_tables, query_chart
    ):
        # Regression: encoder-internal Tensor() wraps used to re-lift inputs
        # to the ambient policy dtype, silently overriding the pinned config
        # dtype (activations and cached encodings came out float64).
        with using_dtype("float64"):  # deliberately mismatched ambient
            model = FCMModel(FCMConfig(dtype="float32", **TINY))
            scorer = FCMScorer(model)
            scorer.index_repository(quickstart_tables[:3])
            encoded = scorer.encoded_table(quickstart_tables[0].table_id)
            assert encoded.representations.dtype == np.float32
            assert encoded.column_embeddings.dtype == np.float32
            with model.inference():
                chart_repr = model.encode_chart(scorer.prepare_query(query_chart))
            assert chart_repr.dtype == np.float32
            scores = scorer.score_chart_batch(query_chart)
            assert all(np.isfinite(score) for score in scores.values())

    def test_config_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError):
            FCMConfig(dtype="float16", **TINY)

    def test_float32_threads_through_scorer_index_and_lsh(
        self, quickstart_tables, query_chart
    ):
        with using_dtype("float32"):
            model = FCMModel(FCMConfig(**TINY))
            scorer = FCMScorer(model)
            processor = HybridQueryProcessor(scorer)
            processor.index_repository(quickstart_tables)
            encoded = scorer.encoded_table(quickstart_tables[0].table_id)
            assert encoded.representations.dtype == np.float32
            assert encoded.column_embeddings.dtype == np.float32
            assert processor.lsh._hyperplanes.dtype == np.float32
            assert scorer.prepare_query(query_chart).segment_features.dtype == np.float32
            result = processor.query(query_chart, k=3)
            assert all(np.isfinite(score) for _, score in result.ranking)

    def test_serving_config_dtype_guard(self):
        with using_dtype("float32"):
            f32_model = FCMModel(FCMConfig(**TINY))
        with pytest.raises(ValueError, match="float64"):
            SearchService(f32_model, ServingConfig(dtype="float64"))
        service = SearchService(f32_model, ServingConfig(dtype="float32"))
        assert service.model.dtype == np.float32


# --------------------------------------------------------------------------- #
# Snapshot dtype round trips (serving persistence)
# --------------------------------------------------------------------------- #
class TestSnapshotDtype:
    def _built_processor(self, dtype, tables):
        with using_dtype(dtype):
            model = FCMModel(FCMConfig(**TINY))
            processor = HybridQueryProcessor(FCMScorer(model))
            processor.index_repository(tables)
        return model, processor

    def test_snapshot_roundtrip_float32(self, tmp_path, quickstart_tables, query_chart):
        model, processor = self._built_processor("float32", quickstart_tables[:6])
        reference = processor.query(query_chart, k=3).ranking
        path = save_processor(processor, tmp_path / "f32_index.npz")
        with using_dtype("float32"):
            restored = load_processor(model, path)
        encoded = restored.scorer.encoded_table(quickstart_tables[0].table_id)
        assert encoded.representations.dtype == np.float32
        restored_ranking = restored.query(query_chart, k=3).ranking
        assert [t for t, _ in restored_ranking] == [t for t, _ in reference]
        for (_, a), (_, b) in zip(reference, restored_ranking):
            assert a == pytest.approx(b, abs=1e-6)

    def test_snapshot_dtype_mismatch_is_a_clear_error(
        self, tmp_path, quickstart_tables
    ):
        _, processor = self._built_processor("float64", quickstart_tables[:4])
        path = save_processor(processor, tmp_path / "f64_index.npz")
        with using_dtype("float32"):
            f32_model = FCMModel(FCMConfig(**TINY))
        with pytest.raises(ValueError, match="dtype=float64"):
            load_processor(f32_model, path)


# --------------------------------------------------------------------------- #
# Cross-precision ranking parity (the float32 acceptance contract)
# --------------------------------------------------------------------------- #
class TestRankingParity:
    def test_float32_reproduces_float64_topk_on_quickstart_corpus(
        self, quickstart_tables, query_chart
    ):
        rankings = {}
        for dtype in ("float64", "float32"):
            with using_dtype(dtype):
                model = FCMModel(FCMConfig(**TINY))
                scorer = FCMScorer(model)
                scorer.index_repository(quickstart_tables)
                scores = scorer.score_chart_batch(query_chart)
            rankings[dtype] = sorted(
                scores.items(), key=lambda item: item[1], reverse=True
            )
        scores64 = dict(rankings["float64"])
        scores32 = dict(rankings["float32"])
        assert set(scores64) == set(scores32)
        # Scores agree far beyond ranking resolution (measured ~2e-7)...
        max_diff = max(abs(scores64[t] - scores32[t]) for t in scores64)
        assert max_diff < 1e-4
        # ...and the top-k (k=5) lists agree except for near-ties.
        top64 = [t for t, _ in rankings["float64"][:5]]
        top32 = [t for t, _ in rankings["float32"][:5]]
        for a, b in zip(top64, top32):
            assert a == b or abs(scores64[a] - scores64[b]) < 1e-4
        assert set(top64) == set(top32)
