"""Tests for ``repro.serving.http``: the HTTP front-end over ``SearchService``.

Everything here talks to a **live socket** — a real :class:`ChartSearchServer`
bound to an ephemeral loopback port — because the properties under test are
exactly the ones a mock would fake: admission control answering 429 while a
request is genuinely in flight, a drain completing an accepted request while
refusing new ones, and wire-level details (``Retry-After``, ``Connection:
close``, 411/413 before the body is read).

The load-bearing acceptance property: a ranking fetched over ``POST /query``
is **byte-identical** (same ids, bit-exact scores after the JSON round-trip)
to :meth:`repro.serving.SearchService.query` on the same service.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.charts import render_chart_for_table
from repro.fcm import FCMModel
from repro.index import LSHConfig
from repro.serving import (
    ChartSearchServer,
    HTTPServingConfig,
    SearchService,
    ServingConfig,
)
from repro.obs import parse_prometheus_text, stage_names
from repro.serving.http import (
    ProtocolError,
    chart_payload_from_series,
    parse_snapshot_payload,
    table_payload_from_table,
)

STRATEGIES = ("none", "interval", "lsh", "hybrid")


# --------------------------------------------------------------------------- #
# A minimal HTTP client (stdlib; one connection per request)
# --------------------------------------------------------------------------- #
def _request(server, method, path, body=None, raw=None, timeout=30.0):
    """One request → ``(status, parsed_json_or_None, headers_dict)``."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=timeout)
    try:
        if raw is not None:
            data = raw
        elif body is not None:
            data = json.dumps(body).encode("utf-8")
        else:
            data = None
        headers = {"Content-Type": "application/json"} if data else {}
        conn.request(method, path, body=data, headers=headers)
        response = conn.getresponse()
        payload = response.read()
        return (
            response.status,
            json.loads(payload) if payload else None,
            dict(response.getheaders()),
        )
    finally:
        conn.close()


def _get(server, path):
    return _request(server, "GET", path)


def _post(server, path, body=None, raw=None):
    return _request(server, "POST", path, body=body, raw=raw)


def _bare_request(server, method, path, headers=()):
    """A hand-rolled request (no automatic Content-Length) for 411/413."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.putrequest(method, path)
        for name, value in headers:
            conn.putheader(name, value)
        conn.endheaders()
        response = conn.getresponse()
        payload = response.read()
        return (
            response.status,
            json.loads(payload) if payload else None,
            dict(response.getheaders()),
        )
    finally:
        conn.close()


# --------------------------------------------------------------------------- #
# Shared fixtures: one server over a small built index
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def http_model(tiny_fcm_config):
    return FCMModel(tiny_fcm_config)


@pytest.fixture(scope="module")
def http_service(http_model, small_records):
    service = SearchService(
        http_model,
        ServingConfig(lsh_config=LSHConfig(num_bits=6, hamming_radius=1)),
    )
    service.build([record.table for record in small_records[:8]])
    return service


@pytest.fixture(scope="module")
def server(http_service):
    server = ChartSearchServer(
        http_service, HTTPServingConfig(port=0, close_service=False)
    ).start()
    yield server
    server.close()


@pytest.fixture(scope="module")
def query_cases(small_records, tiny_fcm_config):
    """``(payload, chart)`` pairs: the wire form and the in-process form."""
    cases = []
    for record in small_records[:3]:
        data = record.table.to_underlying_data(
            list(record.spec.y_columns), x_column=record.spec.x_column
        )
        chart = render_chart_for_table(
            record.table,
            list(record.spec.y_columns),
            x_column=record.spec.x_column,
            spec=tiny_fcm_config.chart_spec,
        )
        cases.append((chart_payload_from_series(data.series), chart))
    return cases


def _slow_service(tiny_fcm_config, records, gate, entered):
    """A tiny service whose ``query`` blocks on ``gate`` (admission tests)."""
    service = SearchService(
        FCMModel(tiny_fcm_config),
        ServingConfig(lsh_config=LSHConfig(num_bits=6, hamming_radius=1)),
    )
    service.build([record.table for record in records])
    original = service.query

    def blocking_query(chart, k, strategy="hybrid"):
        entered.set()
        assert gate.wait(timeout=30.0), "test gate never released"
        return original(chart, k, strategy=strategy)

    service.query = blocking_query
    return service


# --------------------------------------------------------------------------- #
# POST /query: parity with the in-process service
# --------------------------------------------------------------------------- #
class TestQueryParity:
    def test_rankings_byte_identical_to_in_process(
        self, server, http_service, query_cases
    ):
        """The acceptance bar: HTTP results equal SearchService.query bit-for-bit.

        Python's JSON encoder emits floats via ``repr`` and the decoder
        round-trips them exactly, so straight ``==`` on the scores is the
        right comparison — no tolerance.
        """
        for payload, chart in query_cases:
            for strategy in STRATEGIES:
                status, body, _ = _post(
                    server,
                    "/query",
                    {"chart": payload, "k": 5, "strategy": strategy},
                )
                assert status == 200
                expected = http_service.query(chart, 5, strategy=strategy)
                assert body["ranking"] == [
                    [table_id, float(score)]
                    for table_id, score in expected.ranking
                ]
                assert body["candidates"] == expected.candidates
                assert body["total_tables"] == expected.total_tables
                assert body["strategy"] == strategy
                assert body["k"] == 5

    def test_server_side_render_matches_service_cache(
        self, server, http_service, query_cases
    ):
        """Equal payloads hit the service's content-addressed result cache:
        the server renders the posted series under the *service's* chart
        spec, so the fingerprint matches the in-process render exactly."""
        payload, chart = query_cases[0]
        _post(server, "/query", {"chart": payload, "k": 4})
        hits_before = http_service.stats.per_strategy["hybrid"].cache_hits
        status, _, _ = _post(server, "/query", {"chart": payload, "k": 4})
        assert status == 200
        assert (
            http_service.stats.per_strategy["hybrid"].cache_hits
            == hits_before + 1
        )

    def test_strategy_defaults_to_hybrid(self, server, query_cases):
        payload, _ = query_cases[0]
        status, body, _ = _post(server, "/query", {"chart": payload, "k": 2})
        assert status == 200
        assert body["strategy"] == "hybrid"
        assert len(body["ranking"]) == 2

    def test_empty_index_answers_empty_ranking(self, tiny_fcm_config):
        service = SearchService(
            FCMModel(tiny_fcm_config),
            ServingConfig(lsh_config=LSHConfig(num_bits=6, hamming_radius=1)),
        )
        with ChartSearchServer(service, HTTPServingConfig(port=0)) as server:
            status, body, _ = _post(
                server,
                "/query",
                {"chart": {"series": [{"y": [1.0, 2.0, 3.0]}]}, "k": 3},
            )
            assert status == 200
            assert body["ranking"] == []
            assert body["total_tables"] == 0


# --------------------------------------------------------------------------- #
# POST /query: structured 4xx errors (never hangs, never 5xx)
# --------------------------------------------------------------------------- #
class TestQueryValidation:
    def test_malformed_json_is_400(self, server):
        status, body, _ = _post(server, "/query", raw=b"{not json")
        assert status == 400
        assert "malformed JSON" in body["error"]

    def test_non_object_body_is_400(self, server):
        status, body, _ = _post(server, "/query", body=[1, 2, 3])
        assert status == 400
        assert "JSON object" in body["error"]

    @pytest.mark.parametrize("k", [0, -3, 1.5, "5", True, None])
    def test_bad_k_is_400(self, server, query_cases, k):
        payload, _ = query_cases[0]
        status, body, _ = _post(
            server, "/query", {"chart": payload, "k": k}
        )
        assert status == 400
        assert "k" in body["error"]

    def test_missing_k_is_400(self, server, query_cases):
        status, body, _ = _post(server, "/query", {"chart": query_cases[0][0]})
        assert status == 400
        assert "'k'" in body["error"]

    def test_unknown_strategy_is_400(self, server, query_cases):
        status, body, _ = _post(
            server,
            "/query",
            {"chart": query_cases[0][0], "k": 3, "strategy": "quantum"},
        )
        assert status == 400
        assert "quantum" in body["error"]
        assert "hybrid" in body["error"]  # the allowed list is in the message

    def test_client_supplied_spec_is_rejected(self, server):
        status, body, _ = _post(
            server,
            "/query",
            {
                "chart": {"series": [{"y": [1.0, 2.0]}], "spec": {"width": 9}},
                "k": 3,
            },
        )
        assert status == 400
        assert "geometry" in body["error"]

    @pytest.mark.parametrize(
        "series",
        [
            [],
            [{"y": []}],
            [{"y": ["a", "b"]}],
            [{"y": [[1.0], [2.0]]}],
            [{"y": [1.0, 2.0], "x": [1.0]}],  # length mismatch
            [{"y": [1.0, 2.0], "colour": "red"}],  # unknown key
        ],
    )
    def test_bad_series_is_400(self, server, series):
        status, body, _ = _post(
            server, "/query", {"chart": {"series": series}, "k": 3}
        )
        assert status == 400
        assert "series" in body["error"]

    def test_non_finite_values_are_400(self, server):
        # json.dumps(allow_nan=True) emits bare NaN, which the server-side
        # json.loads accepts as float('nan') — the finite check must catch it.
        raw = b'{"chart": {"series": [{"y": [NaN, 1.0]}]}, "k": 3}'
        status, body, _ = _post(server, "/query", raw=raw)
        assert status == 400
        assert "finite" in body["error"]

    def test_empty_body_is_400(self, server):
        status, body, _ = _post(server, "/query", raw=b"")
        assert status == 400
        assert "empty" in body["error"]


# --------------------------------------------------------------------------- #
# Transport-level refusals: routes, methods, body sizes
# --------------------------------------------------------------------------- #
class TestTransportErrors:
    def test_unknown_path_is_404(self, server):
        status, body, _ = _get(server, "/nope")
        assert status == 404
        assert "unknown path" in body["error"]

    def test_wrong_method_on_known_path_is_405(self, server):
        for method, path in [
            ("GET", "/query"),
            ("DELETE", "/query"),
            ("POST", "/healthz"),
            ("DELETE", "/metrics"),
        ]:
            status, body, _ = _request(server, method, path)
            assert status == 405, (method, path)
            assert "not allowed" in body["error"]

    def test_missing_content_length_is_411(self, server):
        status, body, _ = _bare_request(server, "POST", "/query")
        assert status == 411
        assert "Content-Length" in body["error"]

    def test_oversized_body_refused_with_413_before_read(self, server):
        # Declare a huge body but never send it: the server must answer from
        # the headers alone and mark the (now unusable) connection closed.
        declared = server.config.max_body_bytes + 1
        status, body, headers = _bare_request(
            server, "POST", "/query",
            headers=[("Content-Length", str(declared))],
        )
        assert status == 413
        assert "exceeds" in body["error"]
        assert headers.get("Connection") == "close"

    def test_trailing_slash_routes_like_bare_path(self, server):
        status, body, _ = _get(server, "/healthz/")
        assert status == 200
        assert body["status"] == "ok"


# --------------------------------------------------------------------------- #
# Index mutation over HTTP: /tables round trip
# --------------------------------------------------------------------------- #
class TestTablesEndpoints:
    def test_add_list_query_delete_round_trip(
        self, server, http_service, small_records, tiny_fcm_config
    ):
        extra = small_records[8].table
        payload = table_payload_from_table(extra)
        before = http_service.num_tables

        status, body, _ = _post(server, "/tables", {"tables": [payload]})
        assert status == 200
        assert body["added"] == [extra.table_id]
        assert body["already_indexed"] == []
        assert body["num_tables"] == before + 1

        status, body, _ = _get(server, "/tables")
        assert status == 200
        assert extra.table_id in body["table_ids"]
        assert body["num_tables"] == before + 1

        # The new table is immediately queryable: a full ranking (k covers
        # the whole index) must include it.
        chart_payload = chart_payload_from_series(
            extra.to_underlying_data(
                [c.name for c in extra.columns if c.role == "y"],
                x_column=next(
                    (c.name for c in extra.columns if c.role == "x"), None
                ),
            ).series
        )
        status, body, _ = _post(
            server, "/query", {"chart": chart_payload, "k": before + 1}
        )
        assert status == 200
        assert extra.table_id in [table_id for table_id, _ in body["ranking"]]

        status, body, _ = _request(
            server, "DELETE", f"/tables/{extra.table_id}"
        )
        assert status == 200
        assert body["removed"] == extra.table_id
        assert body["num_tables"] == before

    def test_re_adding_known_table_reports_already_indexed(
        self, server, http_service, small_records
    ):
        known = http_service.table_ids[0]
        record = next(
            r for r in small_records if r.table.table_id == known
        )
        status, body, _ = _post(
            server,
            "/tables",
            {"tables": [table_payload_from_table(record.table)]},
        )
        assert status == 200
        assert body["added"] == []
        assert body["already_indexed"] == [known]

    def test_delete_unknown_table_is_404(self, server):
        status, body, _ = _request(server, "DELETE", "/tables/ghost")
        assert status == 404
        assert "ghost" in body["error"]

    def test_duplicate_ids_in_one_request_are_400(self, server, small_records):
        payload = table_payload_from_table(small_records[9].table)
        status, body, _ = _post(
            server, "/tables", {"tables": [payload, payload]}
        )
        assert status == 400
        assert "duplicate" in body["error"]

    def test_malformed_table_is_400(self, server):
        status, body, _ = _post(
            server,
            "/tables",
            {"tables": [{"table_id": "t", "columns": [{"name": "c"}]}]},
        )
        assert status == 400
        assert "values" in body["error"]


# --------------------------------------------------------------------------- #
# POST /snapshot
# --------------------------------------------------------------------------- #
class TestSnapshotEndpoint:
    def test_snapshot_writes_a_loadable_index(
        self, server, http_service, tiny_fcm_config, tmp_path
    ):
        target = tmp_path / "http_index.npz"
        status, body, _ = _post(server, "/snapshot", {"path": str(target)})
        assert status == 200
        assert body["path"] == str(target)
        assert body["num_tables"] == http_service.num_tables
        assert target.exists()

        restored = SearchService.load_index(FCMModel(tiny_fcm_config), target)
        assert sorted(restored.table_ids) == sorted(http_service.table_ids)

    def test_snapshot_without_path_or_default_is_400(self, server):
        status, body, _ = _post(server, "/snapshot", {})
        assert status == 400
        assert "snapshot path" in body["error"]

    def test_parse_snapshot_payload_validates_append_flag(self):
        assert parse_snapshot_payload(None, "/tmp/x.npz") == ("/tmp/x.npz", False)
        assert parse_snapshot_payload(
            {"path": "a.npz", "append": True}, None
        ) == ("a.npz", True)
        with pytest.raises(ProtocolError):
            parse_snapshot_payload({"append": "yes", "path": "a.npz"}, None)


# --------------------------------------------------------------------------- #
# /healthz and /metrics
# --------------------------------------------------------------------------- #
class TestObservability:
    def test_healthz_reports_live_state(self, server, http_service):
        status, body, _ = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["num_tables"] == http_service.num_tables

    def test_metrics_exports_endpoint_and_service_stats(self, server):
        _get(server, "/healthz")  # guarantee at least one observed request
        status, body, _ = _get(server, "/metrics")
        assert status == 200
        assert body["uptime_seconds"] >= 0
        endpoint = body["endpoints"]["GET /healthz"]
        assert endpoint["requests"] >= 1
        assert endpoint["status_counts"]["200"] >= 1
        for key in ("mean", "max", "p50", "p95", "p99"):
            assert key in endpoint["latency_ms"]
        assert body["admission"]["max_inflight"] == server.config.max_inflight
        assert body["service"]["num_tables"] >= 1
        assert "hybrid" in body["service"]["per_strategy"]

    def test_validation_failures_are_counted_under_their_endpoint(
        self, server
    ):
        _post(server, "/query", raw=b"{broken")
        _, body, _ = _get(server, "/metrics")
        assert body["endpoints"]["POST /query"]["status_counts"]["400"] >= 1


# --------------------------------------------------------------------------- #
# Admission control: saturation answers 429, never hangs or 5xx
# --------------------------------------------------------------------------- #
class TestAdmissionControl:
    def test_saturated_server_answers_429_with_retry_after(
        self, tiny_fcm_config, small_records, query_cases
    ):
        gate, entered = threading.Event(), threading.Event()
        service = _slow_service(
            tiny_fcm_config, small_records[:3], gate, entered
        )
        server = ChartSearchServer(
            service,
            HTTPServingConfig(port=0, max_inflight=1, retry_after_seconds=2.0),
        ).start()
        payload, _ = query_cases[0]
        first_result = {}

        def first_request():
            first_result["response"] = _post(
                server, "/query", {"chart": payload, "k": 3}
            )

        thread = threading.Thread(target=first_request)
        try:
            thread.start()
            assert entered.wait(timeout=30.0), "first query never started"

            # The slot is held: an over-admission request is rejected fast.
            start = time.perf_counter()
            status, body, headers = _post(
                server, "/query", {"chart": payload, "k": 3}
            )
            elapsed = time.perf_counter() - start
            assert status == 429
            assert "saturated" in body["error"]
            assert headers.get("Retry-After") == "2"
            assert headers.get("Connection") == "close"
            assert elapsed < 5.0  # rejected, not queued behind the slow query

            # The operator's view bypasses admission even when saturated.
            status, body, _ = _get(server, "/healthz")
            assert status == 200

            gate.set()
            thread.join(timeout=30.0)
            assert first_result["response"][0] == 200  # the admitted one won

            _, metrics, _ = _get(server, "/metrics")
            assert metrics["admission"]["rejected_429"] == 1
            assert (
                metrics["endpoints"]["POST /query"]["status_counts"]["429"] == 1
            )
        finally:
            gate.set()
            thread.join(timeout=10.0)
            server.close()

    def test_released_slot_admits_again(self, tiny_fcm_config, query_cases):
        service = SearchService(
            FCMModel(tiny_fcm_config),
            ServingConfig(lsh_config=LSHConfig(num_bits=6, hamming_radius=1)),
        )
        server = ChartSearchServer(
            service, HTTPServingConfig(port=0, max_inflight=1)
        ).start()
        try:
            payload, _ = query_cases[0]
            for _ in range(3):  # sequential requests each reuse the one slot
                status, _, _ = _post(server, "/query", {"chart": payload, "k": 1})
                assert status == 200
        finally:
            server.close()


# --------------------------------------------------------------------------- #
# Graceful drain: in-flight completes, new work refused, listener dies
# --------------------------------------------------------------------------- #
class TestGracefulDrain:
    def test_drain_completes_inflight_then_refuses_connections(
        self, tiny_fcm_config, small_records, query_cases
    ):
        gate, entered = threading.Event(), threading.Event()
        service = _slow_service(
            tiny_fcm_config, small_records[:3], gate, entered
        )
        server = ChartSearchServer(
            service, HTTPServingConfig(port=0, drain_timeout=30.0)
        ).start()
        payload, _ = query_cases[0]
        inflight_result, closer = {}, None

        def inflight_request():
            inflight_result["response"] = _post(
                server, "/query", {"chart": payload, "k": 3}
            )

        requester = threading.Thread(target=inflight_request)
        try:
            requester.start()
            assert entered.wait(timeout=30.0)

            closer = threading.Thread(target=server.close)
            closer.start()
            deadline = time.monotonic() + 10.0
            while not server.draining and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.draining

            # Mid-drain: still listening, but not admitting.
            status, body, _ = _post(server, "/query", {"chart": payload, "k": 3})
            assert status == 503
            assert "draining" in body["error"]
            status, body, _ = _get(server, "/healthz")
            assert status == 503
            assert body["status"] == "draining"

            # Release the in-flight request: it was admitted before the
            # drain began, so it must complete with a real answer.
            gate.set()
            requester.join(timeout=30.0)
            assert inflight_result["response"][0] == 200
            assert inflight_result["response"][1]["ranking"]  # a real answer

            closer.join(timeout=30.0)
            assert not closer.is_alive()

            # Fully drained: the listener is gone.
            with pytest.raises(ConnectionRefusedError):
                _get(server, "/healthz")
        finally:
            gate.set()
            requester.join(timeout=10.0)
            if closer is not None:
                closer.join(timeout=10.0)
            server.close()

    def test_close_is_idempotent_and_start_after_close_refused(
        self, tiny_fcm_config
    ):
        service = SearchService(
            FCMModel(tiny_fcm_config),
            ServingConfig(lsh_config=LSHConfig(num_bits=6, hamming_radius=1)),
        )
        server = ChartSearchServer(service, HTTPServingConfig(port=0)).start()
        server.close()
        server.close()  # no-op
        with pytest.raises(RuntimeError, match="closed"):
            server.start()


# --------------------------------------------------------------------------- #
# Config validation
# --------------------------------------------------------------------------- #
class TestHTTPServingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"retry_after_seconds": 0.0},
            {"max_body_bytes": 0},
            {"drain_timeout": -1.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HTTPServingConfig(**kwargs)


# --------------------------------------------------------------------------- #
# Observability: tracing, debug flags, Prometheus exposition
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def traced_server(tiny_fcm_config, small_records):
    """A server with end-to-end tracing on (its own service: traces are
    per-instance state and must not leak into the shared ``server``)."""
    service = SearchService(
        FCMModel(tiny_fcm_config),
        ServingConfig(
            lsh_config=LSHConfig(num_bits=6, hamming_radius=1), tracing=True
        ),
    )
    service.build([record.table for record in small_records[:8]])
    server = ChartSearchServer(
        service, HTTPServingConfig(port=0, tracing=True)
    ).start()
    yield server
    server.close()


class TestTracing:
    #: The acceptance bar: one HTTP query covers at least these stages.
    CORE_STAGES = {"admission", "render", "cache", "candidates", "verify", "merge"}

    def test_http_query_produces_a_full_span_tree(
        self, traced_server, query_cases
    ):
        payload, _ = query_cases[0]
        status, _, _ = _post(traced_server, "/query", {"chart": payload, "k": 3})
        assert status == 200
        tree = traced_server.last_trace
        assert tree is not None and tree["name"] == "http_query"
        assert len(tree["trace_id"]) == 16
        names = stage_names(tree)
        assert self.CORE_STAGES <= names, sorted(names)
        assert len(names) >= 6

    def test_cache_hit_is_visible_in_the_trace(
        self, traced_server, query_cases
    ):
        payload, _ = query_cases[1]
        body = {"chart": payload, "k": 3}
        _post(traced_server, "/query", body)
        _post(traced_server, "/query", body)  # identical → result-cache hit
        cache_spans = [
            node
            for node in _walk(traced_server.last_trace)
            if node["name"] == "cache"
        ]
        assert cache_spans and cache_spans[0]["attributes"]["hit"] is True

    def test_debug_trace_returns_the_tree_in_the_response(
        self, traced_server, query_cases
    ):
        payload, _ = query_cases[2]
        status, body, _ = _post(
            traced_server,
            "/query",
            {"chart": payload, "k": 3, "debug": {"trace": True}},
        )
        assert status == 200
        tree = body["debug"]["trace"]
        assert tree["name"] == "http_query"
        assert self.CORE_STAGES <= stage_names(tree)

    def test_debug_profile_returns_a_cprofile_capture(
        self, traced_server, query_cases
    ):
        payload, _ = query_cases[0]
        status, body, _ = _post(
            traced_server,
            "/query",
            {"chart": payload, "k": 3, "debug": {"profile": True}},
        )
        assert status == 200
        assert "cumulative" in body["debug"]["profile"]

    def test_response_without_debug_flags_has_no_debug_key(
        self, traced_server, query_cases
    ):
        """Wire compatibility: tracing on the server must not change the
        response body an ordinary client sees."""
        payload, _ = query_cases[0]
        _, plain, _ = _post(traced_server, "/query", {"chart": payload, "k": 3})
        assert set(plain) == {
            "k", "strategy", "ranking", "candidates", "total_tables", "seconds",
        }
        _, flagged_off, _ = _post(
            traced_server,
            "/query",
            {"chart": payload, "k": 3, "debug": {"trace": False}},
        )
        assert set(flagged_off) == set(plain)
        assert flagged_off["ranking"] == plain["ranking"]

    def test_debug_trace_works_on_an_untraced_server(
        self, server, query_cases
    ):
        """Per-request opt-in: the shared (untraced) server still returns a
        span tree when asked, covering the service stages."""
        payload, _ = query_cases[0]
        status, body, _ = _post(
            server,
            "/query",
            {"chart": payload, "k": 3, "debug": {"trace": True}},
        )
        assert status == 200
        names = stage_names(body["debug"]["trace"])
        assert {"cache", "candidates", "verify", "merge"} <= names

    @pytest.mark.parametrize(
        "debug",
        [{"unknown": True}, {"trace": "yes"}, ["trace"], 1],
    )
    def test_malformed_debug_objects_are_rejected(
        self, server, query_cases, debug
    ):
        payload, _ = query_cases[0]
        status, body, _ = _post(
            server, "/query", {"chart": payload, "k": 3, "debug": debug}
        )
        assert status == 400
        assert "debug" in body["error"]


def _walk(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)


class TestPrometheusEndpoint:
    def test_exposition_passes_the_strict_validator(self, server):
        prior = _healthz_requests(server)
        _get(server, "/healthz")  # at least one observed request
        _settled_metrics(server, min_healthz=prior + 1)
        status, text, headers = _request_text(server, "/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        parsed = parse_prometheus_text(text)
        for series in (
            "http_requests_total",
            "http_request_latency_ms",
            "http_admission_rejected_total",
            "http_draining_rejected_total",
            "http_uptime_seconds",
            "service_tables",
            "service_worker_fallback_active",
        ):
            assert series in parsed, f"missing {series}"
        assert parsed["http_requests_total"]["type"] == "counter"
        assert parsed["http_request_latency_ms"]["type"] == "summary"
        healthz = [
            (labels, value)
            for name, labels, value in parsed["http_requests_total"]["samples"]
            if labels.get("endpoint") == "GET /healthz"
            and labels.get("status") == "200"
        ]
        assert healthz and healthz[0][1] >= 1

    def test_json_and_prometheus_agree_on_request_counts(self, server):
        prior = _healthz_requests(server)
        _get(server, "/healthz")
        body = _settled_metrics(server, min_healthz=prior + 1)
        json_count = body["endpoints"]["GET /healthz"]["status_counts"]["200"]
        _, text, _ = _request_text(server, "/metrics?format=prometheus")
        samples = parse_prometheus_text(text)["http_requests_total"]["samples"]
        prom_count = sum(
            value
            for _, labels, value in samples
            if labels.get("endpoint") == "GET /healthz"
            and labels.get("status") == "200"
        )
        assert prom_count == json_count

    def test_unknown_format_is_a_400(self, server):
        status, body, _ = _get(server, "/metrics?format=xml")
        assert status == 400
        assert "format" in body["error"]

    def test_json_metrics_report_fallback_kind(self, server):
        _, body, _ = _get(server, "/metrics")
        service = body["service"]
        assert "worker_fallback_kind" in service
        assert service["worker_fallback_kind"] in (None, "failure", "closed")


def _healthz_requests(server):
    _, body, _ = _get(server, "/metrics")
    return body["endpoints"].get("GET /healthz", {"requests": 0})["requests"]


def _settled_metrics(server, min_healthz, timeout=5.0):
    """Poll JSON ``/metrics`` until ``GET /healthz`` shows >= ``min_healthz``.

    Request metrics are observed *after* the response bytes are flushed
    (the handler's ``finally`` runs once the client already has its reply),
    so a scrape racing the handler thread can legally miss the request it
    just made.  Polling for the expected count makes count-comparison
    assertions deterministic.
    """
    deadline = time.monotonic() + timeout
    while True:
        _, body, _ = _get(server, "/metrics")
        observed = body["endpoints"].get("GET /healthz", {"requests": 0})["requests"]
        if observed >= min_healthz:
            return body
        assert time.monotonic() < deadline, "healthz request never observed"
        time.sleep(0.01)


def _request_text(server, path):
    """GET returning the raw (non-JSON) body, for the Prometheus format."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30.0)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return (
            response.status,
            response.read().decode("utf-8"),
            dict(response.getheaders()),
        )
    finally:
        conn.close()


# --------------------------------------------------------------------------- #
# Streaming ingest + subscriptions over the wire
# --------------------------------------------------------------------------- #
def _rows_payload(start, size, seed=0, y_name="y"):
    import numpy as np

    rng = np.random.default_rng(seed + start)
    walk = np.cumsum(rng.normal(0.0, 1.0, size))
    columns = [
        {"name": "x", "values": [float(v) for v in range(start, start + size)]},
        {"name": y_name, "values": [float(v) for v in walk]},
    ]
    if start == 0:
        columns[0]["role"] = "x"
    return {"columns": columns}


class TestStreamingEndpoints:
    @pytest.fixture(scope="class")
    def stream_server(self, tiny_fcm_config, small_records):
        from repro.serving import StreamingConfig

        service = SearchService(
            FCMModel(tiny_fcm_config),
            ServingConfig(
                lsh_config=LSHConfig(num_bits=6, hamming_radius=1),
                streaming=StreamingConfig(segment_rows=32),
                tracing=True,
            ),
        )
        service.build([record.table for record in small_records[:4]])
        server = ChartSearchServer(
            service, HTTPServingConfig(port=0, tracing=True, close_service=False)
        ).start()
        yield server
        server.close()

    def test_append_subscribe_poll_round_trip(self, stream_server, query_cases):
        payload, _ = query_cases[0]
        status, body, _ = _post(
            stream_server,
            "/subscriptions",
            {"chart": payload, "k": 2, "threshold": 0.0},
        )
        assert status == 200
        subscription_id = body["subscription_id"]
        assert body["k"] == 2 and body["threshold"] == 0.0

        status, body, _ = _post(
            stream_server, "/tables/live-rt/rows", _rows_payload(0, 40)
        )
        assert status == 200
        assert body["created"] is True
        assert body["table_id"] == "live-rt"
        assert body["total_rows"] == 40
        assert body["segments_total"] == 2
        assert len(body["dirty_segments"]) == 2
        assert body["events_fired"] >= 1

        status, body, _ = _get(stream_server, "/subscriptions")
        assert status == 200
        entry = next(
            e for e in body["subscriptions"]
            if e["subscription_id"] == subscription_id
        )
        assert entry["pending"] >= 1
        assert entry["stats"]["events_delivered"] >= 1

        status, body, _ = _get(
            stream_server, f"/subscriptions/{subscription_id}/events?max=10"
        )
        assert status == 200
        assert body["events"]
        event = body["events"][0]
        assert event["table_id"] == "live-rt"
        assert event["segment_id"].startswith("live-rt::seg-")
        assert event["seq"] >= 1
        assert body["pending"] == 0
        status, body, _ = _get(
            stream_server, f"/subscriptions/{subscription_id}/events"
        )
        assert status == 200 and body["events"] == []

        # A tail append re-encodes a strict subset, visible on the wire.
        status, body, _ = _post(
            stream_server, "/tables/live-rt/rows", _rows_payload(40, 10)
        )
        assert status == 200
        assert body["created"] is False
        assert body["reencode_fraction"] < 1.0

        status, body, _ = _request(
            stream_server, "DELETE", f"/subscriptions/{subscription_id}"
        )
        assert status == 200 and body["removed"] == subscription_id
        status, _, _ = _get(
            stream_server, f"/subscriptions/{subscription_id}/events"
        )
        assert status == 404

    def test_append_validation_errors(self, stream_server, small_records):
        static_id = small_records[0].table.table_id
        status, body, _ = _post(
            stream_server, f"/tables/{static_id}/rows", _rows_payload(0, 8)
        )
        assert status == 400
        assert "static" in body["error"]

        _post(stream_server, "/tables/live-val/rows", _rows_payload(0, 8))
        status, body, _ = _post(
            stream_server,
            "/tables/live-val/rows",
            _rows_payload(8, 8, y_name="other"),
        )
        assert status == 400  # column set mismatch

        status, body, _ = _post(
            stream_server,
            "/tables/live-val/rows",
            {"columns": [
                {"name": "x", "values": [8.0]},
                {"name": "y", "values": [float("nan")]},
            ]},
        )
        assert status == 400

        status, _, _ = _post(stream_server, "/tables//rows", _rows_payload(0, 4))
        assert status == 404
        status, _, _ = _get(
            stream_server, "/subscriptions/sub-999999/events"
        )
        assert status == 404
        status, _, _ = _request(
            stream_server, "DELETE", "/subscriptions/sub-999999"
        )
        assert status == 404
        status, _, _ = _get(
            stream_server, "/subscriptions/sub-999999/events?max=0"
        )
        assert status == 400
        status, _, _ = _post(
            stream_server, "/subscriptions", {"chart": [], "k": 1}
        )
        assert status == 400

    def test_metrics_export_streaming_counters(self, stream_server):
        _post(stream_server, "/tables/live-metrics/rows", _rows_payload(0, 12))
        status, body, _ = _get(stream_server, "/metrics")
        assert status == 200
        service = body["service"]
        assert service["rows_appended"] >= 12
        assert service["append_batches"] >= 1
        assert service["segments_encoded"] >= 1
        assert "subscription_events" in service
        assert "subscriptions_active" in service

    def test_append_produces_http_trace_with_subscription_span(
        self, stream_server, query_cases
    ):
        payload, _ = query_cases[1]
        _post(
            stream_server,
            "/subscriptions",
            {"chart": payload, "k": 1, "threshold": 0.0},
        )
        status, _, _ = _post(
            stream_server, "/tables/live-trace/rows", _rows_payload(0, 20)
        )
        assert status == 200
        tree = stream_server.last_trace
        assert tree is not None and tree["name"] == "http_append_rows"
        names = {node["name"] for node in _walk(tree)}
        assert {"render", "append_rows", "notify", "subscription"} <= names
