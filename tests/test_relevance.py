"""Tests and properties for DTW, bipartite matching and Rel(D, T)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Column, Table
from repro.fcm import ground_truth_relevance
from repro.relevance import (
    RelevanceComputer,
    clear_relevance_cache,
    relevance_cache_info,
    set_relevance_cache_enabled,
    dtw_distance,
    dtw_distance_banded,
    dtw_distance_reference,
    dtw_path,
    low_level_relevance,
    max_weight_matching,
    max_weight_matching_networkx,
    znormalize,
)

series_strategy = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=40
)


class TestDTW:
    def test_identical_series_distance_zero(self):
        a = np.sin(np.linspace(0, 6, 50))
        assert dtw_distance(a, a) == pytest.approx(0.0, abs=1e-9)

    def test_known_small_case(self):
        a = np.array([0.0, 1.0, 2.0])
        b = np.array([0.0, 2.0])
        # Without normalisation: optimal alignment pairs (0,0), (1,1), (2,1) -> |1-2|=1
        assert dtw_distance(a, b, normalize=False) == pytest.approx(1.0)

    def test_shift_invariance_with_normalization(self):
        a = np.sin(np.linspace(0, 6, 40))
        b = a + 100.0
        assert dtw_distance(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            dtw_distance(np.array([]), np.array([1.0]))
        with pytest.raises(ValueError):
            dtw_distance(np.array([np.inf]), np.array([1.0]))
        with pytest.raises(ValueError):
            dtw_distance(np.ones((2, 2)), np.ones(2))

    def test_banded_matches_exact_when_band_is_wide(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal(30), rng.standard_normal(25)
        exact = dtw_distance(a, b)
        banded = dtw_distance_banded(a, b, band=30)
        assert banded == pytest.approx(exact, rel=1e-9)

    def test_banded_never_below_exact(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            a, b = rng.standard_normal(40), rng.standard_normal(35)
            assert dtw_distance_banded(a, b, band=3) >= dtw_distance(a, b) - 1e-9

    def test_dtw_path_endpoints(self):
        a = np.array([0.0, 1.0, 0.0, -1.0])
        b = np.array([0.0, 1.0, -1.0])
        distance, path = dtw_path(a, b)
        assert path[0] == (0, 0)
        assert path[-1] == (len(a) - 1, len(b) - 1)
        assert distance >= 0

    @given(series_strategy, series_strategy)
    @settings(max_examples=40, deadline=None)
    def test_symmetry_and_non_negativity(self, a, b):
        a, b = np.asarray(a), np.asarray(b)
        d_ab = dtw_distance(a, b)
        d_ba = dtw_distance(b, a)
        assert d_ab >= 0
        assert d_ab == pytest.approx(d_ba, rel=1e-9, abs=1e-9)

    @given(series_strategy)
    @settings(max_examples=30, deadline=None)
    def test_self_distance_zero(self, a):
        a = np.asarray(a)
        assert dtw_distance(a, a) == pytest.approx(0.0, abs=1e-9)

    def test_znormalize_constant_series(self):
        np.testing.assert_allclose(znormalize(np.full(5, 3.0)), np.zeros(5))


class TestDTWVectorized:
    """The anti-diagonal sweep must reproduce the scalar reference exactly."""

    def test_matches_reference_on_random_series(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            n, m = rng.integers(1, 50, size=2)
            a, b = rng.standard_normal(int(n)), rng.standard_normal(int(m))
            assert dtw_distance(a, b) == dtw_distance_reference(a, b)
            assert dtw_distance(a, b, normalize=False) == dtw_distance_reference(
                a, b, normalize=False
            )

    @given(series_strategy, series_strategy)
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_property(self, a, b):
        a, b = np.asarray(a), np.asarray(b)
        assert dtw_distance(a, b) == pytest.approx(
            dtw_distance_reference(a, b), rel=1e-12, abs=1e-12
        )

    @given(series_strategy, series_strategy)
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, a, b):
        a, b = np.asarray(a), np.asarray(b)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a), abs=1e-12)

    @given(series_strategy)
    @settings(max_examples=30, deadline=None)
    def test_zero_self_distance(self, a):
        a = np.asarray(a)
        assert dtw_distance(a, a) == pytest.approx(0.0, abs=1e-9)

    def test_degenerate_lengths(self):
        assert dtw_distance(
            np.array([3.0]), np.array([1.0, 2.0]), normalize=False
        ) == dtw_distance_reference(np.array([3.0]), np.array([1.0, 2.0]), normalize=False)
        assert dtw_distance(np.array([2.0]), np.array([2.0]), normalize=False) == 0.0

    def test_full_band_is_exact(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            n, m = rng.integers(2, 40, size=2)
            a, b = rng.standard_normal(int(n)), rng.standard_normal(int(m))
            exact = dtw_distance(a, b)
            assert dtw_distance_banded(a, b, band=max(int(n), int(m))) == pytest.approx(
                exact, rel=1e-12, abs=1e-12
            )

    def test_band_at_least_length_difference_is_finite_upper_bound(self):
        rng = np.random.default_rng(4)
        for _ in range(20):
            n, m = rng.integers(2, 40, size=2)
            a, b = rng.standard_normal(int(n)), rng.standard_normal(int(m))
            banded = dtw_distance_banded(a, b, band=abs(int(n) - int(m)))
            exact = dtw_distance(a, b)
            assert np.isfinite(banded)
            assert banded >= exact - 1e-9

    def test_path_distance_matches_vectorized_distance(self):
        rng = np.random.default_rng(5)
        a, b = rng.standard_normal(25), rng.standard_normal(31)
        distance, path = dtw_path(a, b)
        assert distance == pytest.approx(dtw_distance(a, b), abs=1e-12)
        # Path is monotone and contiguous.
        for (i0, j0), (i1, j1) in zip(path, path[1:]):
            assert 0 <= i1 - i0 <= 1 and 0 <= j1 - j0 <= 1
            assert (i1 - i0) + (j1 - j0) >= 1


class TestMatching:
    def test_simple_assignment(self):
        weights = np.array([[0.9, 0.1], [0.2, 0.8]])
        result = max_weight_matching(weights)
        assert set(result.pairs) == {(0, 0), (1, 1)}
        assert result.total_weight == pytest.approx(1.7)

    def test_rectangular_matrices(self):
        weights = np.array([[0.5, 0.9, 0.1]])
        result = max_weight_matching(weights)
        assert result.pairs == [(0, 1)]
        tall = max_weight_matching(weights.T)
        assert tall.pairs == [(1, 0)]

    def test_zero_weights_not_matched(self):
        result = max_weight_matching(np.zeros((2, 2)))
        assert result.pairs == [] and result.total_weight == 0.0
        assert result.mean_weight == 0.0

    def test_empty_matrix(self):
        result = max_weight_matching(np.zeros((0, 3)))
        assert result.pairs == []

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            max_weight_matching(np.array([[-1.0]]))

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_hungarian_matches_networkx(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        weights = rng.random((rows, cols))
        hungarian = max_weight_matching(weights)
        reference = max_weight_matching_networkx(weights)
        assert hungarian.total_weight == pytest.approx(reference.total_weight, rel=1e-9)


class TestRelevance:
    def test_low_level_relevance_bounds(self):
        a = np.sin(np.linspace(0, 6, 30))
        assert low_level_relevance(a, a) == pytest.approx(1.0)
        other = np.linspace(-5, 5, 30)
        value = low_level_relevance(a, other)
        assert 0.0 < value < 1.0

    def test_relevance_prefers_source_table(self, simple_table):
        data = simple_table.to_underlying_data(["rising", "wave"], x_column="time")
        n = simple_table.num_rows
        rng = np.random.default_rng(0)
        unrelated = Table(
            "tbl_unrelated",
            [
                Column("a", rng.standard_normal(n)),
                Column("b", rng.standard_normal(n)),
            ],
        )
        computer = RelevanceComputer()
        assert computer.score(data, simple_table) > computer.score(data, unrelated)

    def test_rank_and_top_k(self, simple_table):
        data = simple_table.to_underlying_data(["wave"], x_column="time")
        rng = np.random.default_rng(1)
        other = Table(
            "tbl_other", [Column("noise", rng.standard_normal(simple_table.num_rows))]
        )
        computer = RelevanceComputer(use_banded_dtw=True)
        ranked = computer.rank_tables(data, [other, simple_table])
        assert ranked[0][0] == "tbl_simple"
        assert computer.top_k(data, [other, simple_table], k=1) == ["tbl_simple"]
        with pytest.raises(ValueError):
            computer.top_k(data, [other], k=0)

    def test_mean_aggregate_is_scale_free(self, simple_table):
        data = simple_table.to_underlying_data(["rising", "wave"], x_column="time")
        sum_score = RelevanceComputer(aggregate="sum").score(data, simple_table)
        mean_score = RelevanceComputer(aggregate="mean").score(data, simple_table)
        assert sum_score == pytest.approx(mean_score * 2, rel=1e-6)

    def test_invalid_aggregate(self):
        with pytest.raises(ValueError):
            RelevanceComputer(aggregate="median")

    def test_relevance_explanation_names_columns(self, simple_table):
        data = simple_table.to_underlying_data(["wave"], x_column="time")
        result = RelevanceComputer().relevance(data, simple_table)
        assert "wave" in result.matched_columns(simple_table)


class TestRelevanceCache:
    """The process-wide memo for ground-truth relevance scores."""

    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_relevance_cache()
        set_relevance_cache_enabled(None)
        yield
        clear_relevance_cache()
        set_relevance_cache_enabled(None)

    def test_memoised_scores_equal_uncached(self, simple_table):
        data = simple_table.to_underlying_data(["rising", "wave"], x_column="time")
        cold = ground_truth_relevance(data, simple_table, max_points=24)
        warm = ground_truth_relevance(data, simple_table, max_points=24)
        assert warm == cold
        info = relevance_cache_info()
        assert info.hits == 1 and info.size == 1

        set_relevance_cache_enabled(False)
        uncached = ground_truth_relevance(data, simple_table, max_points=24)
        assert uncached == pytest.approx(cold, abs=1e-12)

    def test_key_distinguishes_content_not_just_ids(self, simple_table):
        """Two tables sharing an id but not contents must not collide."""
        data = simple_table.to_underlying_data(["wave"], x_column="time")
        rng = np.random.default_rng(7)
        impostor = Table(
            simple_table.table_id,
            [Column("noise", rng.standard_normal(simple_table.num_rows))],
        )
        a = ground_truth_relevance(data, simple_table, max_points=24)
        b = ground_truth_relevance(data, impostor, max_points=24)
        assert a != b
        assert relevance_cache_info().size == 2

    def test_key_distinguishes_max_points_and_computer(self, simple_table):
        data = simple_table.to_underlying_data(["wave"], x_column="time")
        ground_truth_relevance(data, simple_table, max_points=16)
        ground_truth_relevance(data, simple_table, max_points=24)
        ground_truth_relevance(
            data, simple_table, max_points=24,
            computer=RelevanceComputer(use_banded_dtw=True, aggregate="mean"),
        )
        assert relevance_cache_info().size == 3
        assert relevance_cache_info().hits == 0

    def test_env_flag_disables(self, simple_table, monkeypatch):
        monkeypatch.setenv("REPRO_RELEVANCE_CACHE", "0")
        data = simple_table.to_underlying_data(["wave"], x_column="time")
        ground_truth_relevance(data, simple_table, max_points=16)
        assert relevance_cache_info().size == 0
        assert not relevance_cache_info().enabled

    def test_relevance_matrix_hits_across_recomputation(self, simple_table):
        """The fixture-cost scenario: recomputing a matrix is pure cache hits."""
        from repro.data import CorpusConfig, filter_line_chart_records, generate_corpus
        from repro.fcm import FCMConfig, build_training_data, relevance_matrix

        records = filter_line_chart_records(
            generate_corpus(CorpusConfig(num_records=6, min_rows=60, max_rows=80, seed=5))
        )
        config = FCMConfig(embed_dim=16, num_heads=2, num_layers=1,
                           data_segment_size=32, beta=2, max_data_segments=4)
        data = build_training_data(records, config, seed=0)
        first, order1 = relevance_matrix(data.examples, data.tables, max_points=16)
        misses_after_first = relevance_cache_info().misses
        second, order2 = relevance_matrix(data.examples, data.tables, max_points=16)
        assert order1 == order2
        assert np.array_equal(first, second)
        assert relevance_cache_info().misses == misses_after_first  # all hits
