"""Tests for the comparison methods: CML, Qetch*, DeepEye/LineNet, ablations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CMLConfig,
    CMLMethod,
    CMLModel,
    DELNMethod,
    DeepEyeRecommender,
    FCMMethod,
    LineNetConfig,
    LineNetModel,
    OptLNMethod,
    QetchConfig,
    QetchStarMethod,
    column_interestingness,
    detect_x_column,
    fcm_full_config,
    fcm_without_da_config,
    fcm_without_hcman_config,
    qetch_match_error,
    qetch_similarity,
    train_cml,
    train_linenet,
)
from repro.charts import ChartSpec, render_chart_for_table
from repro.data import Column, DataRepository, Table
from repro.fcm import FCMModel


class TestQetch:
    def test_identical_series_have_low_error(self):
        series = np.sin(np.linspace(0, 6, 80))
        assert qetch_match_error(series, series) < 0.05
        assert qetch_similarity(series, series) > 0.9

    def test_different_shapes_have_higher_error(self):
        wave = np.sin(np.linspace(0, 6, 80))
        line = np.linspace(0, 1, 80)
        assert qetch_match_error(wave, line) > qetch_match_error(wave, wave)

    def test_scale_invariance(self):
        series = np.sin(np.linspace(0, 6, 60))
        assert qetch_match_error(series, 100 * series + 7) == pytest.approx(
            qetch_match_error(series, series), abs=1e-9
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QetchConfig(num_sections=0)
        with pytest.raises(ValueError):
            QetchConfig(num_sections=10, resample_length=5)

    def test_qetch_star_ranks_source_table_well(self, simple_table, simple_chart):
        rng = np.random.default_rng(0)
        noise_table = Table(
            "tbl_noise",
            [Column(f"n{i}", rng.standard_normal(simple_table.num_rows)) for i in range(3)],
        )
        method = QetchStarMethod()
        method.index_repository([simple_table, noise_table])
        ranked = method.rank(simple_chart)
        assert ranked[0][0] == simple_table.table_id


class TestVisRec:
    def test_column_interestingness_orders_sensibly(self, simple_table):
        rising = column_interestingness(simple_table["rising"])
        flat = column_interestingness(
            Column("const", np.full(simple_table.num_rows, 3.0))
        )
        assert rising > flat == 0.0

    def test_detect_x_column(self, simple_table):
        assert detect_x_column(simple_table) == "time"

    def test_recommendations_are_bounded_and_renderable(self, simple_table):
        recommender = DeepEyeRecommender()
        column_sets = recommender.recommend_column_sets(simple_table)
        assert 0 < len(column_sets) <= recommender.config.max_recommendations
        charts = recommender.recommend_charts(simple_table)
        assert len(charts) == len(column_sets)
        for chart in charts:
            assert chart.num_lines >= 1


class TestLineNetAndDELN:
    @pytest.fixture(scope="class")
    def linenet(self, small_records):
        model, losses = train_linenet(
            small_records[:5], config=LineNetConfig(embed_dim=16, epochs=2), chart_spec=ChartSpec()
        )
        return model, losses

    def test_training_produces_finite_losses(self, linenet):
        _, losses = linenet
        assert len(losses) == 2 and all(np.isfinite(l) for l in losses)

    def test_embedding_is_normalised(self, linenet, simple_chart):
        model, _ = linenet
        embedding = model.embed(simple_chart.image)
        assert np.linalg.norm(embedding) == pytest.approx(1.0, rel=1e-6)

    def test_similarity_of_identical_charts_is_one(self, linenet, simple_chart):
        model, _ = linenet
        e = model.embed(simple_chart.image)
        assert LineNetModel.similarity(e, e) == pytest.approx(1.0, rel=1e-6)

    def test_deln_and_optln_score_all_tables(self, linenet, small_records, simple_table, simple_chart):
        model, _ = linenet
        tables = [simple_table] + [r.table for r in small_records[:3]]
        deln = DELNMethod(model)
        deln.index_repository(tables)
        scores = deln.score_chart(simple_chart)
        assert set(scores) == {t.table_id for t in tables}

        specs = {r.table.table_id: r.spec for r in small_records[:3]}
        optln = OptLNMethod(model, specs=specs)
        optln.index_repository(tables)
        opt_scores = optln.score_chart(simple_chart)
        assert set(opt_scores) == {t.table_id for t in tables}


class TestCML:
    @pytest.fixture(scope="class")
    def cml(self, small_records):
        model, losses = train_cml(
            small_records[:5], config=CMLConfig(embed_dim=16, epochs=2), chart_spec=ChartSpec()
        )
        return model, losses

    def test_losses_finite(self, cml):
        _, losses = cml
        assert all(np.isfinite(l) for l in losses)

    def test_cosine_bounds(self, cml, simple_chart, simple_table):
        model, _ = cml
        chart_vec = model.chart_tower(simple_chart.image).numpy()
        table_vec = model.table_tower(simple_table).numpy()
        assert -1.0 <= CMLModel.cosine(chart_vec, table_vec) <= 1.0

    def test_method_ranks_all_indexed_tables(self, cml, small_records, simple_chart):
        model, _ = cml
        method = CMLMethod(model)
        tables = [r.table for r in small_records[:4]]
        method.index_repository(tables)
        ranked = method.rank(simple_chart)
        assert len(ranked) == 4
        values = [s for _, s in ranked]
        assert values == sorted(values, reverse=True)


class TestAblationFactories:
    def test_config_factories(self):
        assert fcm_full_config().use_hcman and fcm_full_config().enable_da_layers
        assert not fcm_without_hcman_config().use_hcman
        assert not fcm_without_da_config().enable_da_layers

    def test_fcm_method_adapter(self, tiny_fcm_config, small_records, simple_chart, simple_table):
        model = FCMModel(tiny_fcm_config)
        method = FCMMethod(model, name="FCM-test")
        repository = DataRepository([simple_table] + [r.table for r in small_records[:2]])
        method.index_repository(repository)
        scores = method.score_chart(simple_chart)
        assert len(scores) == 3
        assert method.name == "FCM-test"
        top = method.top_k_ids(simple_chart, k=2)
        assert len(top) == 2
