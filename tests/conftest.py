"""Shared fixtures: small corpora, charts and model configurations.

Everything here is deliberately tiny so the full unit-test suite runs in well
under a minute on a laptop CPU (and ``-m "not slow"`` in seconds); the
benchmark directory uses larger scales.  See ``pytest.ini`` for the tiers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import default_dtype

from repro.charts import ChartSpec, render_chart_for_table
from repro.data import (
    Column,
    CorpusConfig,
    Table,
    filter_line_chart_records,
    generate_corpus,
)
from repro.fcm import FCMConfig
from repro.vision import VisualElementExtractor


def active_dtype() -> np.dtype:
    """The precision policy the suite is running under (see REPRO_DTYPE)."""
    return np.dtype(default_dtype())


def dtype_tol(float64_tol: float, float32_tol: float) -> float:
    """Pick an equivalence tolerance for the active precision policy.

    The suite runs under both policies in CI: float64 keeps the historical
    tight bounds (the engine is bit-for-bit unchanged there), float32 uses
    the loosened bound appropriate for ~1e-7 machine epsilon.
    """
    return float32_tol if active_dtype() == np.float32 else float64_tol


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_records():
    """A handful of line-chart corpus records shared across tests.

    Sized to the largest slice any test takes (``small_records[:8]`` in the
    serving tests) plus headroom; bigger corpora only add fixture-build time.
    """
    records = generate_corpus(
        CorpusConfig(num_records=12, min_rows=80, max_rows=120, seed=3)
    )
    return filter_line_chart_records(records)


@pytest.fixture(scope="session")
def simple_table() -> Table:
    """A small deterministic table with distinct column shapes."""
    n = 96
    t = np.linspace(0, 1, n)
    return Table(
        "tbl_simple",
        [
            Column("time", np.arange(n, dtype=float), role="x"),
            Column("rising", 10.0 * t + 1.0, role="y"),
            Column("wave", np.sin(2 * np.pi * 3 * t) * 5.0, role="y"),
            Column("flatish", np.full(n, 2.0) + 0.01 * t, role="y"),
        ],
    )


@pytest.fixture(scope="session")
def simple_chart(simple_table):
    """A two-line chart rendered from the simple table."""
    return render_chart_for_table(
        simple_table, ["rising", "wave"], x_column="time", spec=ChartSpec()
    )


@pytest.fixture(scope="session")
def tiny_fcm_config() -> FCMConfig:
    """The smallest sensible FCM configuration (used by model/training tests)."""
    return FCMConfig(
        embed_dim=16,
        num_heads=2,
        num_layers=1,
        data_segment_size=32,
        beta=2,
        max_data_segments=4,
    )


@pytest.fixture(scope="session")
def extractor() -> VisualElementExtractor:
    return VisualElementExtractor()
