"""Tests for the visual element extractor and the LCSeg segmentation model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.charts import ChartSpec, build_linechartseg, render_chart_for_table
from repro.data import AugmentationConfig
from repro.vision import (
    LCSegConfig,
    VisualElementExtractor,
    decode_tick_values,
    extract_y_range,
    separate_line_instances,
    tick_pixel_rows,
    train_lcseg,
)


class TestTickDecoding:
    def test_decoded_range_matches_axis(self, simple_chart):
        values = decode_tick_values(simple_chart.image, simple_chart.class_mask)
        assert len(values) >= 2
        low, high = extract_y_range(simple_chart.image, simple_chart.class_mask)
        assert low == pytest.approx(simple_chart.axis_range[0], rel=0.05, abs=0.5)
        assert high == pytest.approx(simple_chart.axis_range[1], rel=0.05, abs=0.5)

    def test_extract_y_range_fallback(self):
        blank = np.zeros((20, 20))
        mask = np.zeros((20, 20), dtype=np.int8)
        assert extract_y_range(blank, mask, fallback=(0.0, 1.0)) == (0.0, 1.0)
        with pytest.raises(ValueError):
            extract_y_range(blank, mask)

    def test_tick_pixel_rows_grouped(self, simple_chart):
        rows = tick_pixel_rows(simple_chart.class_mask)
        assert len(rows) == len(simple_chart.ticks)


class TestLineExtraction:
    def test_oracle_extraction_matches_chart(self, simple_chart, extractor):
        elements = extractor.extract(simple_chart)
        assert elements.num_lines == simple_chart.num_lines
        for line in elements.lines:
            assert line.coverage > 0.9
            values = line.interpolated_values()
            assert np.all(np.isfinite(values))

    def test_extracted_values_track_underlying_shape(self, simple_chart, extractor):
        elements = extractor.extract(simple_chart)
        # The "rising" line should be recovered as (mostly) increasing values.
        rising_values = elements.lines[0].interpolated_values()
        diffs = np.diff(rising_values)
        assert np.mean(diffs >= -1e-6) > 0.8

    def test_separate_line_instances_two_parallel_lines(self):
        mask = np.zeros((40, 60), dtype=bool)
        mask[10, 5:55] = True
        mask[30, 5:55] = True
        traces = separate_line_instances(mask, (0, 40, 5, 55))
        assert len(traces) == 2
        means = sorted(np.nanmean(t) for t in traces)
        assert means[0] == pytest.approx(10, abs=1)
        assert means[1] == pytest.approx(30, abs=1)

    def test_separate_line_instances_empty(self):
        mask = np.zeros((10, 10), dtype=bool)
        assert separate_line_instances(mask, (0, 10, 0, 10)) == []

    def test_model_free_instance_separation_pipeline(self, simple_chart):
        extractor = VisualElementExtractor(use_oracle_instances=False)
        elements = extractor.extract(simple_chart)
        assert elements.num_lines >= 1
        assert elements.y_range[0] < elements.y_range[1]


class TestLCSeg:
    @pytest.fixture(scope="class")
    def tiny_lcseg(self, small_records):
        config = AugmentationConfig(partition=False, down_sample=False)
        dataset = build_linechartseg(small_records[:3], augmentation=config, max_examples=4)
        lcseg_config = LCSegConfig(window=5, hidden_dim=24, epochs=3, max_pixels_per_image=300)
        model, history = train_lcseg(dataset, config=lcseg_config)
        return model, history, dataset

    def test_training_reduces_loss(self, tiny_lcseg):
        _, history, _ = tiny_lcseg
        assert history.losses[-1] < history.losses[0]

    def test_pixel_accuracy_beats_chance(self, tiny_lcseg):
        model, _, dataset = tiny_lcseg
        example = dataset[0]
        accuracy = model.pixel_accuracy(example.image, example.class_mask)
        assert accuracy > 0.5  # 5 classes; chance would be ~0.2

    def test_predict_mask_shape_and_background(self, tiny_lcseg):
        model, _, dataset = tiny_lcseg
        example = dataset[0]
        predicted = model.predict_mask(example.image)
        assert predicted.shape == example.image.shape
        assert (predicted[example.image == 0] == 0).all()

    def test_window_must_be_odd(self):
        with pytest.raises(ValueError):
            LCSegConfig(window=4)

    def test_extractor_with_trained_model(self, tiny_lcseg, simple_chart):
        model, _, _ = tiny_lcseg
        extractor = VisualElementExtractor(model=model)
        elements = extractor.extract(simple_chart)
        assert elements.num_lines == simple_chart.num_lines
        assert elements.y_range[0] < elements.y_range[1]
