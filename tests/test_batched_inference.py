"""Equivalence and perf harness for the batched no-grad inference engine.

Three contracts are pinned down here:

* **no-grad forward == grad forward** — disabling graph construction must not
  change a single forward value, only skip the bookkeeping;
* **batched == per-pair** — ``FCMScorer.score_chart_batch`` (one stacked
  matcher forward over all candidates) must reproduce the per-pair loop's
  scores within 1e-8 and its rankings exactly, across matcher variants,
  candidate-set sizes and chunkings;
* **batched is actually faster** — a micro-benchmark over a 50-table
  repository asserts the advertised ≥3× speed-up (skippable on constrained
  machines via ``REPRO_SKIP_PERF_TESTS=1``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.charts import ChartSpec, render_chart_for_table
from repro.data import Column, Table
from repro.fcm import FCMConfig
from repro.fcm.model import FCMModel
from repro.fcm.preprocessing import prepare_table_input
from repro.fcm.scorer import FCMScorer, pad_candidate_batch
from repro.nn import Tensor, enable_grad, is_grad_enabled, no_grad

from conftest import dtype_tol


def _tiny_config(**overrides) -> FCMConfig:
    base = dict(
        embed_dim=16,
        num_heads=2,
        num_layers=1,
        data_segment_size=32,
        beta=2,
        max_data_segments=4,
    )
    base.update(overrides)
    return FCMConfig(**base)


def _make_repository(num_tables: int, seed: int = 11):
    """Small synthetic tables with varying column counts/lengths."""
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(num_tables):
        n = int(rng.integers(60, 200))
        columns = [Column("x", np.arange(n, dtype=float), role="x")]
        for c in range(int(rng.integers(1, 5))):
            offset = float(rng.standard_normal()) * 4.0
            columns.append(
                Column(f"y{c}", offset + np.cumsum(rng.standard_normal(n)), role="y")
            )
        tables.append(Table(f"tbl{i:03d}", columns))
    return tables


@pytest.fixture(scope="module")
def repository():
    return _make_repository(12)


@pytest.fixture(scope="module")
def query_chart(repository):
    table = repository[0]
    lines = [c.name for c in table.columns if c.role == "y"][:2]
    return render_chart_for_table(table, lines, x_column="x", spec=ChartSpec())


class TestNoGradMode:
    def test_no_grad_matches_grad_forward_values(self, repository, query_chart):
        for use_hcman, enable_da in [(True, True), (False, True), (True, False)]:
            model = FCMModel(
                _tiny_config(use_hcman=use_hcman, enable_da_layers=enable_da)
            )
            model.eval()
            scorer = FCMScorer(model)
            chart_input = scorer.prepare_query(query_chart)
            table_input = prepare_table_input(repository[1], model.config)
            grad_out = model.forward(chart_input, table_input)
            with no_grad():
                no_grad_out = model.forward(chart_input, table_input)
            # Same NumPy expressions run either way: values are identical.
            assert no_grad_out.item() == grad_out.item()
            assert grad_out.requires_grad
            assert not no_grad_out.requires_grad

    def test_no_grad_builds_no_graph(self):
        param = Tensor(np.ones((3, 3)), requires_grad=True)
        with no_grad():
            out = (param @ param).sum()
        assert not out.requires_grad
        assert out._parents == ()
        assert out._backward is None
        with pytest.raises(RuntimeError):
            out.backward()

    def test_no_grad_nests_and_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_instance_is_reentrant(self):
        ng = no_grad()
        with ng:
            with ng:
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_no_grad_as_decorator(self):
        param = Tensor(np.ones(4), requires_grad=True)

        @no_grad()
        def evaluate():
            return (param * 2.0).sum()

        out = evaluate()
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_module_inference_restores_training_mode(self):
        model = FCMModel(_tiny_config())
        model.train(True)
        with model.inference() as m:
            assert m is model
            assert not model.training
            assert not is_grad_enabled()
        assert model.training
        assert is_grad_enabled()

    def test_gradients_still_flow_outside_no_grad(self):
        param = Tensor(np.ones(5), requires_grad=True)
        (param * 3.0).sum().backward()
        np.testing.assert_allclose(param.grad, np.full(5, 3.0))


class TestBatchedEquivalence:
    @pytest.fixture(
        scope="class",
        params=["hcman+da", "hcman-only", "averaged"],
    )
    def scorer(self, request, repository):
        variant = {
            "hcman+da": dict(use_hcman=True, enable_da_layers=True),
            "hcman-only": dict(use_hcman=True, enable_da_layers=False),
            "averaged": dict(use_hcman=False, enable_da_layers=True),
        }[request.param]
        scorer = FCMScorer(FCMModel(_tiny_config(**variant)))
        scorer.index_repository(repository)
        return scorer

    def test_scores_match_per_pair_loop(self, scorer, query_chart):
        loop = scorer.score_chart(query_chart)
        batched = scorer.score_chart_batch(query_chart)
        assert set(loop) == set(batched)
        for table_id, score in loop.items():
            assert batched[table_id] == pytest.approx(score, abs=dtype_tol(1e-8, 5e-5))

    @pytest.mark.parametrize("subset_size", [1, 3, 7])
    def test_candidate_subsets_match(self, scorer, query_chart, subset_size):
        ids = scorer.indexed_table_ids[:subset_size]
        loop = scorer.score_chart(query_chart, table_ids=ids)
        batched = scorer.score_chart_batch(query_chart, table_ids=ids)
        for table_id in ids:
            assert batched[table_id] == pytest.approx(loop[table_id], abs=dtype_tol(1e-8, 5e-5))

    def test_rankings_identical(self, scorer, query_chart):
        loop_rank = sorted(
            scorer.score_chart(query_chart).items(),
            key=lambda item: item[1],
            reverse=True,
        )
        batched_rank = scorer.rank(query_chart)
        assert [tid for tid, _ in loop_rank] == [tid for tid, _ in batched_rank]

    def test_chunked_batches_match_single_batch(self, scorer, query_chart):
        full = scorer.score_chart_batch(query_chart, batch_size=None)
        chunked = scorer.score_chart_batch(query_chart, batch_size=3)
        for table_id, score in full.items():
            assert chunked[table_id] == pytest.approx(score, abs=dtype_tol(1e-8, 5e-5))

    def test_empty_candidate_set(self, scorer, query_chart):
        assert scorer.score_chart_batch(query_chart, table_ids=[]) == {}

    def test_match_batch_on_ragged_shapes(self):
        """Direct matcher-level equivalence across padded shapes."""
        rng = np.random.default_rng(9)
        for use_hcman in (True, False):
            model = FCMModel(_tiny_config(use_hcman=use_hcman))
            model.eval()
            chart = Tensor(rng.standard_normal((2, 4, 16)))
            reps = [
                rng.standard_normal((nc, n2, 16))
                for nc, n2 in [(1, 1), (3, 2), (2, 4), (4, 3)]
            ]
            expected = [float(model.match(chart, Tensor(rep)).item()) for rep in reps]
            batch, segment_mask, column_mask = pad_candidate_batch(reps)
            with no_grad():
                got = model.match_batch(
                    chart, Tensor(batch), segment_mask, column_mask
                ).numpy()
            np.testing.assert_allclose(got, expected, atol=dtype_tol(1e-8, 5e-5))

    def test_pad_candidate_batch_masks(self):
        reps = [np.ones((2, 3, 4)), np.ones((1, 2, 4))]
        batch, segment_mask, column_mask = pad_candidate_batch(reps)
        assert batch.shape == (2, 2, 3, 4)
        assert segment_mask.sum() == 2 * 3 + 1 * 2
        assert column_mask.tolist() == [[True, True], [True, False]]
        assert batch[1, 1].sum() == 0.0
        with pytest.raises(ValueError):
            pad_candidate_batch([])


@pytest.mark.skipif(
    os.environ.get("REPRO_SKIP_PERF_TESTS") == "1",
    reason="perf regression thresholds disabled via REPRO_SKIP_PERF_TESTS=1 "
    "(constrained or heavily-loaded machine)",
)
class TestBatchedPerf:
    def test_batched_scoring_is_at_least_3x_faster_on_50_tables(self):
        repository = _make_repository(50, seed=23)
        scorer = FCMScorer(FCMModel(_tiny_config()))
        scorer.index_repository(repository)
        table = repository[0]
        chart = render_chart_for_table(
            table,
            [c.name for c in table.columns if c.role == "y"][:1],
            x_column="x",
            spec=ChartSpec(),
        )
        # Warm up both paths (query preparation is cached after this).
        loop_scores = scorer.score_chart(chart)
        batch_scores = scorer.score_chart_batch(chart)
        assert max(
            abs(loop_scores[tid] - batch_scores[tid]) for tid in loop_scores
        ) < dtype_tol(1e-8, 5e-5)

        def best_of(fn, repeats=3):
            timings = []
            for _ in range(repeats):
                start = time.perf_counter()
                fn(chart)
                timings.append(time.perf_counter() - start)
            return min(timings)

        per_pair_seconds = best_of(scorer.score_chart)
        batched_seconds = best_of(scorer.score_chart_batch)
        speedup = per_pair_seconds / batched_seconds
        assert speedup >= 3.0, (
            f"batched scoring only {speedup:.2f}x faster "
            f"({per_pair_seconds * 1e3:.1f} ms vs {batched_seconds * 1e3:.1f} ms)"
        )
