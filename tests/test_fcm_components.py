"""Tests for FCM preprocessing, encoders, DA layers and matchers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fcm import (
    ChartInput,
    FCMConfig,
    FCMModel,
    SegmentDatasetEncoder,
    SegmentLineChartEncoder,
    column_segments,
    paper_scale_config,
    prepare_chart_input,
    prepare_table_input,
    resample_series,
)
from repro.fcm.da_layers import (
    DataAggregationEncoder,
    HierarchicalMultiScaleLayer,
    MixtureOfExpertsLayer,
    TransformationLayer,
)
from repro.fcm.matcher import AveragedMatcher, HCMANMatcher, build_matcher
from repro.nn import Tensor


class TestConfig:
    def test_defaults_are_consistent(self):
        config = FCMConfig()
        assert config.chart_segment_feature_dim > 0
        assert config.num_chart_segments >= 1
        assert config.sub_segment_size * (2 ** config.beta) == config.data_segment_size

    def test_validation(self):
        with pytest.raises(ValueError):
            FCMConfig(embed_dim=30, num_heads=4)
        with pytest.raises(ValueError):
            FCMConfig(data_segment_size=30, beta=3)
        with pytest.raises(ValueError):
            FCMConfig(image_pool=0)

    def test_with_overrides(self):
        config = FCMConfig().with_overrides(embed_dim=64)
        assert config.embed_dim == 64
        assert FCMConfig().embed_dim == 32  # original untouched

    def test_paper_scale_config(self):
        config = paper_scale_config()
        assert config.embed_dim == 768 and config.num_layers == 12


class TestPreprocessing:
    def test_resample_series(self):
        values = np.array([0.0, 1.0, 2.0, 3.0])
        out = resample_series(values, 7)
        assert out.shape == (7,)
        assert out[0] == 0.0 and out[-1] == 3.0
        np.testing.assert_allclose(resample_series(values, 4), values)

    def test_column_segments_shape(self, tiny_fcm_config):
        values = np.random.default_rng(0).standard_normal(100)
        segments = column_segments(values, tiny_fcm_config)
        assert segments.shape[1] == tiny_fcm_config.data_segment_size
        assert 1 <= segments.shape[0] <= tiny_fcm_config.max_data_segments

    def test_prepare_chart_input(self, simple_chart, extractor, tiny_fcm_config):
        elements = extractor.extract(simple_chart)
        chart_input = prepare_chart_input(simple_chart, elements, tiny_fcm_config)
        assert chart_input.num_lines == simple_chart.num_lines
        assert chart_input.segment_features.shape == (
            simple_chart.num_lines,
            tiny_fcm_config.num_chart_segments,
            tiny_fcm_config.chart_segment_feature_dim,
        )
        # Standardised features should have roughly zero mean.
        assert abs(chart_input.segment_features.mean()) < 0.2

    def test_prepare_table_input_filters_by_range(self, simple_table, tiny_fcm_config):
        full = prepare_table_input(simple_table, tiny_fcm_config)
        assert full.num_columns == simple_table.num_columns
        filtered = prepare_table_input(simple_table, tiny_fcm_config, y_range=(-6.0, -3.0))
        assert filtered.num_columns < full.num_columns
        # An impossible range falls back to keeping every column.
        fallback = prepare_table_input(simple_table, tiny_fcm_config, y_range=(1e9, 2e9))
        assert fallback.num_columns == full.num_columns


class TestEncoders:
    def test_chart_encoder_output_shape(self, simple_chart, extractor, tiny_fcm_config):
        elements = extractor.extract(simple_chart)
        chart_input = prepare_chart_input(simple_chart, elements, tiny_fcm_config)
        encoder = SegmentLineChartEncoder(tiny_fcm_config, np.random.default_rng(0))
        encoded = encoder(chart_input.segment_features)
        assert encoded.shape == (
            chart_input.num_lines,
            tiny_fcm_config.num_chart_segments,
            tiny_fcm_config.embed_dim,
        )

    def test_dataset_encoder_output_shape(self, simple_table, tiny_fcm_config):
        table_input = prepare_table_input(simple_table, tiny_fcm_config)
        encoder = SegmentDatasetEncoder(tiny_fcm_config, np.random.default_rng(0))
        encoded = encoder(table_input.segments)
        assert encoded.shape[0] == table_input.num_columns
        assert encoded.shape[2] == tiny_fcm_config.embed_dim

    def test_dataset_encoder_without_da_layers(self, simple_table, tiny_fcm_config):
        config = tiny_fcm_config.with_overrides(enable_da_layers=False)
        encoder = SegmentDatasetEncoder(config, np.random.default_rng(0))
        assert encoder.da_encoder is None
        table_input = prepare_table_input(simple_table, config)
        assert encoder(table_input.segments).shape[-1] == config.embed_dim
        assert encoder.moe_gate_weights(table_input.segments[0]) is None

    def test_column_embeddings_for_lsh(self, simple_table, tiny_fcm_config):
        encoder = SegmentDatasetEncoder(tiny_fcm_config, np.random.default_rng(0))
        table_input = prepare_table_input(simple_table, tiny_fcm_config)
        embeddings = encoder.column_embeddings(table_input.segments)
        assert embeddings.shape == (table_input.num_columns, tiny_fcm_config.embed_dim)

    def test_encoder_input_validation(self, tiny_fcm_config):
        encoder = SegmentDatasetEncoder(tiny_fcm_config, np.random.default_rng(0))
        with pytest.raises(ValueError):
            encoder(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            encoder(np.zeros((0, 2, tiny_fcm_config.data_segment_size)))


class TestDALayers:
    def test_transformation_layer_shape(self, tiny_fcm_config):
        layer = TransformationLayer(tiny_fcm_config, np.random.default_rng(0), "avg")
        out = layer(Tensor(np.zeros((5, 4, tiny_fcm_config.sub_segment_size))))
        assert out.shape == (5, 4, tiny_fcm_config.embed_dim)

    def test_hmrl_reduces_leaves_to_root(self, tiny_fcm_config):
        hmrl = HierarchicalMultiScaleLayer(tiny_fcm_config, np.random.default_rng(0))
        leaves = Tensor(np.random.default_rng(1).standard_normal(
            (3, 2 ** tiny_fcm_config.beta, tiny_fcm_config.embed_dim)
        ))
        root = hmrl(leaves)
        assert root.shape == (3, tiny_fcm_config.embed_dim)
        with pytest.raises(ValueError):
            hmrl(Tensor(np.zeros((3, 3, tiny_fcm_config.embed_dim))))

    def test_moe_gates_sum_to_one(self, tiny_fcm_config):
        moe = MixtureOfExpertsLayer(tiny_fcm_config, np.random.default_rng(0))
        roots = Tensor(np.random.default_rng(1).standard_normal(
            (tiny_fcm_config.num_experts, 4, tiny_fcm_config.embed_dim)
        ))
        blended, gates = moe(roots)
        assert blended.shape == (4, tiny_fcm_config.embed_dim)
        np.testing.assert_allclose(gates.numpy().sum(axis=-1), np.ones(4), atol=1e-9)

    def test_da_encoder_batched_shapes(self, tiny_fcm_config):
        encoder = DataAggregationEncoder(tiny_fcm_config, np.random.default_rng(0))
        segments = np.random.default_rng(1).standard_normal(
            (3, 2, tiny_fcm_config.data_segment_size)
        )
        out = encoder(segments)
        assert out.shape == (3, 2, tiny_fcm_config.embed_dim)
        out_one, gates = encoder(segments[0], return_gates=True)
        assert out_one.shape == (2, tiny_fcm_config.embed_dim)
        assert gates.shape == (2, tiny_fcm_config.num_experts)
        with pytest.raises(ValueError):
            encoder(np.zeros((2, tiny_fcm_config.data_segment_size + 1)))

    def test_da_encoder_is_differentiable(self, tiny_fcm_config):
        encoder = DataAggregationEncoder(tiny_fcm_config, np.random.default_rng(0))
        segments = np.random.default_rng(1).standard_normal((2, tiny_fcm_config.data_segment_size))
        out = encoder(segments).sum()
        out.backward()
        grads = [p.grad for p in encoder.parameters() if p.grad is not None]
        assert grads and any(np.abs(g).sum() > 0 for g in grads)


class TestMatchers:
    def _reprs(self, config):
        rng = np.random.default_rng(0)
        chart = Tensor(rng.standard_normal((2, 3, config.embed_dim)))
        table = Tensor(rng.standard_normal((4, 2, config.embed_dim)))
        return chart, table

    def test_hcman_output_in_unit_interval(self, tiny_fcm_config):
        matcher = HCMANMatcher(tiny_fcm_config, np.random.default_rng(0))
        chart, table = self._reprs(tiny_fcm_config)
        score = matcher(chart, table).item()
        assert 0.0 <= score <= 1.0

    def test_averaged_matcher_output_in_unit_interval(self, tiny_fcm_config):
        matcher = AveragedMatcher(tiny_fcm_config, np.random.default_rng(0))
        chart, table = self._reprs(tiny_fcm_config)
        assert 0.0 <= matcher(chart, table).item() <= 1.0

    def test_build_matcher_respects_config(self, tiny_fcm_config):
        assert isinstance(
            build_matcher(tiny_fcm_config.with_overrides(use_hcman=True), np.random.default_rng(0)),
            HCMANMatcher,
        )
        assert isinstance(
            build_matcher(tiny_fcm_config.with_overrides(use_hcman=False), np.random.default_rng(0)),
            AveragedMatcher,
        )

    def test_matcher_gradients_flow_to_both_inputs(self, tiny_fcm_config):
        matcher = HCMANMatcher(tiny_fcm_config, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        chart = Tensor(rng.standard_normal((2, 3, tiny_fcm_config.embed_dim)), requires_grad=True)
        table = Tensor(rng.standard_normal((3, 2, tiny_fcm_config.embed_dim)), requires_grad=True)
        matcher(chart, table).backward()
        assert np.abs(chart.grad).sum() > 0
        assert np.abs(table.grad).sum() > 0


class TestFCMModel:
    def test_forward_scalar_in_unit_interval(
        self, simple_chart, simple_table, extractor, tiny_fcm_config
    ):
        model = FCMModel(tiny_fcm_config)
        elements = extractor.extract(simple_chart)
        chart_input = prepare_chart_input(simple_chart, elements, tiny_fcm_config)
        table_input = prepare_table_input(simple_table, tiny_fcm_config)
        score = model.relevance(chart_input, table_input)
        assert 0.0 <= score <= 1.0

    def test_empty_table_rejected(self, tiny_fcm_config):
        model = FCMModel(tiny_fcm_config)
        from repro.fcm.preprocessing import TableInput

        empty = TableInput(
            segments=np.zeros((0, 1, tiny_fcm_config.data_segment_size)),
            column_names=[],
            table_id="empty",
        )
        with pytest.raises(ValueError):
            model.encode_table(empty)

    def test_line_and_column_embeddings(self, simple_chart, simple_table, extractor, tiny_fcm_config):
        model = FCMModel(tiny_fcm_config)
        elements = extractor.extract(simple_chart)
        chart_input = prepare_chart_input(simple_chart, elements, tiny_fcm_config)
        table_input = prepare_table_input(simple_table, tiny_fcm_config)
        assert model.line_embeddings(chart_input).shape == (
            simple_chart.num_lines,
            tiny_fcm_config.embed_dim,
        )
        assert model.column_embeddings(table_input).shape == (
            simple_table.num_columns,
            tiny_fcm_config.embed_dim,
        )

    def test_ablation_models_have_different_parameter_sets(self, tiny_fcm_config):
        full = FCMModel(tiny_fcm_config)
        no_da = FCMModel(tiny_fcm_config.with_overrides(enable_da_layers=False))
        no_hcman = FCMModel(tiny_fcm_config.with_overrides(use_hcman=False))
        assert no_da.num_parameters() < full.num_parameters()
        assert no_hcman.num_parameters() < full.num_parameters()
