"""Tests for metrics, the benchmark builder and the experiment runners.

The experiment-runner tests use :func:`repro.bench.smoke_scale` so the whole
module stays well under a minute; the ``benchmarks/`` directory runs the same
code at the reporting scale.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import (
    build_benchmark,
    dcg_at_k,
    evaluate_method,
    format_curves,
    format_grid,
    format_method_comparison,
    format_table,
    ndcg_at_k,
    paper_numbers,
    precision_at_k,
    recall_at_k,
    run_table1,
    smoke_scale,
    summarize,
)
from repro.bench.builder import BenchmarkConfig


class TestMetrics:
    def test_precision_basics(self):
        assert precision_at_k(["a", "b", "c"], {"a", "c"}, 3) == pytest.approx(2 / 3)
        assert precision_at_k([], {"a"}, 5) == 0.0
        assert precision_at_k(["a"], set(), 5) == 0.0
        with pytest.raises(ValueError):
            precision_at_k(["a"], {"a"}, 0)

    def test_ndcg_perfect_and_worst(self):
        relevant = {"a", "b"}
        assert ndcg_at_k(["a", "b", "x"], relevant, 3) == pytest.approx(1.0)
        assert ndcg_at_k(["x", "y", "z"], relevant, 3) == 0.0
        better_order = ndcg_at_k(["a", "x", "b"], relevant, 3)
        worse_order = ndcg_at_k(["x", "a", "b"], relevant, 3)
        assert better_order > worse_order

    def test_recall(self):
        assert recall_at_k(["a", "b"], {"a", "c"}, 2) == pytest.approx(0.5)

    def test_dcg_monotone_in_gains(self):
        assert dcg_at_k([1, 1, 0], 3) > dcg_at_k([1, 0, 0], 3)

    @given(
        st.lists(st.text(alphabet="abcdefgh", min_size=1, max_size=1), min_size=1, max_size=8, unique=True),
        st.sets(st.text(alphabet="abcdefgh", min_size=1, max_size=1), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_metric_bounds(self, retrieved, relevant, k):
        prec = precision_at_k(retrieved, relevant, k)
        ndcg = ndcg_at_k(retrieved, relevant, k)
        assert 0.0 <= prec <= 1.0
        assert 0.0 <= ndcg <= 1.0


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 0.25], ["x", None]], title="T")
        assert "T" in text and "0.250" in text and "-" in text

    def test_format_method_comparison(self):
        result = {"overall": {"FCM": {"prec": 0.5, "ndcg": 0.4}}}
        text = format_method_comparison(result, ["FCM"], title="Table II")
        assert "Table II" in text and "0.500" in text

    def test_format_grid_and_curves(self):
        assert "P1\\P2" in format_grid({(30, 64): 0.4, (60, 64): 0.5})
        assert "epoch" in format_curves({"semi-hard": [0.1, 0.2]})


class TestPaperNumbers:
    def test_fcm_wins_every_section_of_table2(self):
        for section in paper_numbers.TABLE2.values():
            best = max(section, key=lambda m: section[m]["prec"])
            assert best == "FCM"

    def test_table7_peaks_at_p1_60_p2_64(self):
        grid = paper_numbers.TABLE7
        assert max(grid, key=grid.get) == (60, 64)

    def test_table8_hybrid_is_fastest(self):
        times = {k: v["query_seconds"] for k, v in paper_numbers.TABLE8.items()}
        assert min(times, key=times.get) == "hybrid"


class TestBenchmarkBuilder:
    @pytest.fixture(scope="class")
    def bench_data(self):
        return build_benchmark(smoke_scale().benchmark)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BenchmarkConfig(corpus_records=10, train_records=20)
        with pytest.raises(ValueError):
            BenchmarkConfig(k=0)

    def test_two_queries_per_test_record(self, bench_data):
        assert len(bench_data.queries) == 2 * bench_data.config.query_records
        aggregated = bench_data.queries_with_aggregation(True)
        plain = bench_data.queries_with_aggregation(False)
        assert len(aggregated) == len(plain) == bench_data.config.query_records

    def test_ground_truth_contains_source_or_noisy_copy(self, bench_data):
        """Non-aggregated queries must keep their source (or a noisy copy) relevant.

        Aggregated queries are excluded: their underlying data is the
        aggregated series, and the DTW ground truth may legitimately rank
        other tables above the source when the window is large.
        """
        for query in bench_data.queries_with_aggregation(False):
            related = {
                table_id
                for table_id in query.relevant
                if table_id == query.source_table_id
                or table_id.startswith(f"{query.source_table_id}::noisy")
            }
            assert related, f"{query.query_id} has no related table in its ground truth"

    def test_repository_contains_noisy_copies(self, bench_data):
        noisy = [t for t in bench_data.repository.table_ids if "::noisy" in t]
        assert len(noisy) == bench_data.config.query_records * bench_data.config.noisy_copies_per_query

    def test_relevant_sets_have_size_k(self, bench_data):
        for query in bench_data.queries:
            assert len(query.relevant) == bench_data.k
            assert len(query.ranked_ground_truth) == bench_data.k

    def test_statistics_table1(self, bench_data):
        stats = run_table1(bench_data)
        assert stats["queries"]["total"] == len(bench_data.queries)
        assert stats["repository"]["total"] == len(bench_data.repository)
        bucket_sum = sum(v for k, v in stats["queries"].items() if k != "total")
        assert bucket_sum == stats["queries"]["total"]

    def test_splits_are_disjoint_from_queries(self, bench_data):
        train_ids = {r.table.table_id for r in bench_data.train_records}
        query_sources = {q.source_table_id for q in bench_data.queries}
        assert not (train_ids & query_sources)


class TestEvaluation:
    def test_evaluate_with_oracle_method(self):
        """A method that returns the ground truth must achieve perfect scores."""
        from repro.baselines.base import DiscoveryMethod

        benchmark = build_benchmark(smoke_scale().benchmark)

        class OracleMethod(DiscoveryMethod):
            name = "oracle"

            def __init__(self, benchmark):
                self._benchmark = benchmark
                self._by_chart = {id(q.chart): q for q in benchmark.queries}

            def index_repository(self, tables):
                pass

            def score_chart(self, chart):
                query = self._by_chart[id(chart)]
                scores = {table_id: 0.0 for table_id in self._benchmark.repository.table_ids}
                for rank, table_id in enumerate(query.ranked_ground_truth):
                    scores[table_id] = 1.0 - rank * 1e-3
                return scores

        oracle = OracleMethod(benchmark)
        evaluations = evaluate_method(oracle, benchmark)
        summary = summarize(evaluations)
        assert summary["prec"] == pytest.approx(1.0)
        assert summary["ndcg"] == pytest.approx(1.0)
        assert summary["queries"] == len(benchmark.queries)

    def test_summarize_empty(self):
        assert summarize([]) == {"prec": 0.0, "ndcg": 0.0, "queries": 0}
