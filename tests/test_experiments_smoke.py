"""Smoke-scale integration tests of every experiment runner.

These validate the exact code paths the ``benchmarks/`` targets execute, at a
size that keeps the whole module to roughly a minute of CPU.  Heavy shared
state (the bench_data and the trained methods) is built once per module.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    build_benchmark,
    run_fig5,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
    run_table9,
    smoke_scale,
    train_baseline_methods,
    train_fcm_methods,
)
from repro.bench.experiments import LINE_BUCKETS, WINDOW_BUCKETS
from repro.index import LSHConfig

# Trains several models per session: the bulk of the unit suite's wall time.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def scale():
    return smoke_scale()


@pytest.fixture(scope="module")
def bench_data(scale):
    return build_benchmark(scale.benchmark)


@pytest.fixture(scope="module")
def fcm_methods(bench_data, scale):
    return train_fcm_methods(bench_data, scale, variants=("FCM", "FCM-HCMAN", "FCM-DA"))


@pytest.fixture(scope="module")
def baseline_methods(bench_data, scale):
    return train_baseline_methods(bench_data, scale)


def test_table1_statistics(bench_data):
    stats = run_table1(bench_data)
    assert set(stats) == {"queries", "repository"}
    assert stats["queries"]["total"] == len(bench_data.queries)


def test_table2_overall_effectiveness(bench_data, fcm_methods, baseline_methods):
    methods = {**baseline_methods, "FCM": fcm_methods["FCM"]}
    result = run_table2(methods, bench_data)
    assert set(result) == {"overall", "with_da", "without_da"}
    for section in result.values():
        assert set(section) == set(methods)
        for summary in section.values():
            assert 0.0 <= summary["prec"] <= 1.0
            assert 0.0 <= summary["ndcg"] <= 1.0


def test_table3_multiline_buckets(bench_data, fcm_methods):
    result = run_table3({"FCM": fcm_methods["FCM"]}, bench_data)
    assert set(result) == set(LINE_BUCKETS)
    for bucket in LINE_BUCKETS:
        assert "FCM" in result[bucket]


def test_table4_da_breakdown(bench_data, fcm_methods):
    result = run_table4(fcm_methods["FCM"], bench_data)
    assert set(result) == {"min", "max", "sum", "avg"}
    for row in result.values():
        assert set(row) == set(WINDOW_BUCKETS)
        for value in row.values():
            assert np.isnan(value) or 0.0 <= value <= 1.0


def test_table5_hcman_ablation(bench_data, fcm_methods):
    result = run_table5(fcm_methods["FCM"], fcm_methods["FCM-HCMAN"], bench_data)
    assert "overall" in result
    assert set(result["overall"]) == {"FCM", "FCM-HCMAN"}


def test_table6_da_ablation(bench_data, fcm_methods):
    result = run_table6(fcm_methods["FCM"], fcm_methods["FCM-DA"], bench_data)
    assert set(result) == {"overall", "with_da", "without_da"}
    assert set(result["with_da"]) == {"FCM", "FCM-DA"}


def test_table7_segment_size_grid(bench_data, scale):
    grid = run_table7(bench_data, scale, p1_values=(60,), p2_values=(32,))
    assert set(grid) == {(60, 32)}
    assert 0.0 <= grid[(60, 32)] <= 1.0


def test_table8_indexing(bench_data, fcm_methods):
    result = run_table8(
        fcm_methods["FCM"],
        bench_data,
        lsh_config=LSHConfig(num_bits=6, hamming_radius=2),
        queries=bench_data.queries[:3],
    )
    for strategy in ("none", "interval", "lsh", "hybrid"):
        assert 0.0 <= result[strategy]["prec"] <= 1.0
        assert result[strategy]["query_seconds"] >= 0.0
    # Structural guarantees: the interval tree cannot lose candidates relative
    # to a linear scan, so its effectiveness matches "none" exactly.
    assert result["interval"]["prec"] == pytest.approx(result["none"]["prec"])
    assert result["interval"]["ndcg"] == pytest.approx(result["none"]["ndcg"])
    # Pruned strategies inspect at most as many candidates as the linear scan.
    assert result["hybrid"]["mean_candidates"] <= result["none"]["mean_candidates"]
    assert result["lsh"]["mean_candidates"] <= result["none"]["mean_candidates"]


def test_table9_negative_counts(bench_data, scale):
    result = run_table9(bench_data, scale, negative_counts=(1, 2))
    assert set(result) == {1, 2}
    for summary in result.values():
        assert 0.0 <= summary["prec"] <= 1.0


def test_fig5_negative_sampling_curves(bench_data, scale):
    curves = run_fig5(bench_data, scale, strategies=("semi-hard", "random"), epochs=1)
    assert set(curves) == {"semi-hard", "random"}
    for series in curves.values():
        assert len(series) == 1
        assert 0.0 <= series[0] <= 1.0
