"""Tests for ``repro.obs``: metrics, tracing, logging, profiling.

The properties worth pinning are exactly the ones the serving layer leans
on:

* the metrics registry survives **concurrent** ``inc``/``observe`` from
  many threads with exact totals (the HTTP server mutates it from
  ``ThreadingHTTPServer`` handler threads);
* the Prometheus rendering round-trips through the strict
  :func:`~repro.obs.parse_prometheus_text` validator — the same one the CI
  smoke job fails on — and the validator genuinely rejects malformed input;
* :func:`~repro.obs.span` is a **no-op without an active trace** (the
  warm-path overhead budget depends on it) and a correct tree-builder with
  one;
* a trace id sent over the worker-pool pipe comes back as a stitched
  worker span tree carrying the same id — driven through the *real*
  :func:`~repro.serving.workers._worker_main` loop on an in-process pipe,
  so both ends of the protocol are the shipped code.
"""

from __future__ import annotations

import io
import json
import multiprocessing
import threading

import pytest

from repro.charts import render_chart_for_table
from repro.fcm import FCMModel
from repro.fcm.scorer import FCMScorer
from repro.obs import (
    LogConfig,
    MetricsRegistry,
    configure_logging,
    get_logger,
    get_registry,
    maybe_log_slow_query,
    mint_query_id,
    parse_prometheus_text,
    profile_block,
    slow_query_threshold_ms,
    span,
    stage_names,
    start_trace,
)
from repro.obs.tracing import _NULL_SPAN, current_span, current_trace_id
from repro.serving.workers import _worker_main


# --------------------------------------------------------------------------- #
# Metrics: semantics
# --------------------------------------------------------------------------- #
class TestMetricsRegistry:
    def test_counter_counts_per_label_set(self):
        registry = MetricsRegistry()
        c = registry.counter("requests_total", "requests")
        c.inc(endpoint="a")
        c.inc(2.0, endpoint="a")
        c.inc(endpoint="b")
        assert c.value(endpoint="a") == 3.0
        assert c.value(endpoint="b") == 1.0
        assert c.value(endpoint="never") == 0.0

    def test_counter_rejects_negative_increments(self):
        c = MetricsRegistry().counter("n_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1.0)

    def test_counter_set_total_mirrors_external_counts(self):
        c = MetricsRegistry().counter("external_total")
        c.set_total(41.0)
        c.set_total(42.0)
        assert c.value() == 42.0

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("inflight")
        g.set(5.0)
        g.inc()
        g.dec(2.0)
        assert g.value() == 4.0

    def test_histogram_snapshot_summarises_reservoir(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency_ms", "latency", reservoir=100)
        for v in range(1, 101):
            h.observe(float(v), endpoint="q")
        assert h.count(endpoint="q") == 100
        assert h.sum(endpoint="q") == pytest.approx(5050.0)
        (series,) = registry.snapshot()["latency_ms"]["series"]
        assert series["labels"] == {"endpoint": "q"}
        assert series["count"] == 100
        assert series["mean"] == pytest.approx(50.5)
        assert series["max"] == 100.0
        assert series["p50"] <= series["p95"] <= series["p99"] <= 100.0

    def test_histogram_reservoir_is_bounded(self):
        h = MetricsRegistry().histogram("lat", reservoir=8)
        for v in range(1000):
            h.observe(float(v))
        # Exact totals survive the bounded ring; percentiles use recents.
        assert h.count() == 1000
        assert h.sum() == pytest.approx(sum(range(1000)))

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total").inc(**{"bad-label": "v"})

    def test_process_default_registry_is_shared(self):
        assert get_registry() is get_registry()


# --------------------------------------------------------------------------- #
# Metrics: thread safety (the ThreadingHTTPServer contract)
# --------------------------------------------------------------------------- #
class TestMetricsThreadSafety:
    def test_concurrent_observe_from_many_threads_keeps_exact_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        histogram = registry.histogram("lat_ms", reservoir=64)
        num_threads, per_thread = 8, 500
        barrier = threading.Barrier(num_threads)

        def hammer(thread_index: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                counter.inc(endpoint="q")
                histogram.observe(float(i), endpoint="q")

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(num_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value(endpoint="q") == num_threads * per_thread
        assert histogram.count(endpoint="q") == num_threads * per_thread
        # The rendering must also be coherent after the stampede.
        parsed = parse_prometheus_text(registry.render_prometheus())
        (sample,) = [
            s for s in parsed["hits_total"]["samples"] if s[0] == "hits_total"
        ]
        assert sample[2] == num_threads * per_thread


# --------------------------------------------------------------------------- #
# Prometheus exposition: render → strict parse round trip
# --------------------------------------------------------------------------- #
class TestPrometheusExposition:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("requests_total", "requests served").inc(
            3, endpoint="GET /healthz", status="200"
        )
        registry.gauge("inflight", "in flight").set(2)
        h = registry.histogram("latency_ms", "latency")
        for v in (1.0, 2.0, 3.0):
            h.observe(v, endpoint="q")
        return registry

    def test_round_trip_through_the_validator(self):
        parsed = parse_prometheus_text(self._registry().render_prometheus())
        assert parsed["requests_total"]["type"] == "counter"
        assert parsed["inflight"]["type"] == "gauge"
        assert parsed["latency_ms"]["type"] == "summary"
        (sample,) = parsed["requests_total"]["samples"]
        assert sample[1] == {"endpoint": "GET /healthz", "status": "200"}
        assert sample[2] == 3.0
        names = {name for name, _, _ in parsed["latency_ms"]["samples"]}
        assert names == {"latency_ms", "latency_ms_count", "latency_ms_sum",
                         "latency_ms_max"}
        quantiles = {
            labels["quantile"]
            for name, labels, _ in parsed["latency_ms"]["samples"]
            if name == "latency_ms"
        }
        assert quantiles == {"0.5", "0.95", "0.99"}

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total").inc(reason='he said "no"\nand left\\')
        parsed = parse_prometheus_text(registry.render_prometheus())
        (sample,) = parsed["odd_total"]["samples"]
        assert sample[1]["reason"] == 'he said \\"no\\"\\nand left\\\\'

    @pytest.mark.parametrize(
        "text, match",
        [
            ("orphan_metric 1\n", "no # TYPE"),
            ("# TYPE x counter\nx one\n", "unparsable sample value"),
            ("# TYPE x counter\nx{bad} 1\n", "malformed label pair"),
            ("# TYPE x counter\n# TYPE x counter\n", "duplicate TYPE"),
            ("# TYPE x flavour\n", "unknown metric type"),
            ("# TYPE x\n", "malformed TYPE"),
            ("!!!\n", "malformed sample"),
        ],
    )
    def test_validator_rejects_malformed_expositions(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_prometheus_text(text)

    def test_validator_accepts_special_values_and_comments(self):
        text = "# a comment\n# TYPE x gauge\nx +Inf\nx{k=\"v\"} 2 1700000000\n"
        parsed = parse_prometheus_text(text)
        values = [v for _, _, v in parsed["x"]["samples"]]
        assert values[0] == float("inf") and values[1] == 2.0


# --------------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------------- #
class TestTracing:
    def test_span_without_a_trace_is_the_shared_noop(self):
        assert current_span() is None
        assert span("anything", key="value") is _NULL_SPAN
        with span("anything") as sp:
            assert sp is None
        assert current_trace_id() is None

    def test_trace_builds_a_nested_tree(self):
        with start_trace("query", k=5) as root:
            trace_id = current_trace_id()
            with span("candidates", strategy="hybrid") as sp:
                sp.attributes["candidates"] = 7
                with span("lsh_lookup"):
                    pass
            with span("verify"):
                pass
        assert root.trace_id == trace_id and len(trace_id) == 16
        tree = root.to_dict()
        assert tree["trace_id"] == trace_id
        assert tree["attributes"] == {"k": 5}
        assert [c["name"] for c in tree["children"]] == ["candidates", "verify"]
        candidates = tree["children"][0]
        assert candidates["attributes"]["candidates"] == 7
        assert [c["name"] for c in candidates["children"]] == ["lsh_lookup"]
        # Only the root carries the trace id in serialised form.
        assert "trace_id" not in candidates
        assert all(node["duration_ms"] >= 0.0 for node in tree["children"])
        assert stage_names(tree) == {
            "query", "candidates", "lsh_lookup", "verify"
        }

    def test_trace_context_is_restored_after_exit(self):
        with start_trace("outer"):
            assert current_span() is not None
        assert current_span() is None

    def test_attach_adopts_serialised_worker_trees(self):
        with start_trace("query") as root:
            current_span().attach(
                {"name": "worker", "duration_ms": 1.0, "children": []}
            )
        assert stage_names(root) == {"query", "worker"}

    def test_explicit_trace_id_joins_an_existing_trace(self):
        qid = mint_query_id()
        with start_trace("worker", trace_id=qid) as root:
            assert current_trace_id() == qid
        assert root.to_dict()["trace_id"] == qid


# --------------------------------------------------------------------------- #
# Structured logging
# --------------------------------------------------------------------------- #
class TestLogging:
    def teardown_method(self):
        configure_logging(level="off")

    def test_info_emits_one_json_line(self):
        stream = io.StringIO()
        configure_logging(level="info", format="json", stream=stream)
        get_logger("repro.test").info("thing_happened", tables=3, ok=True)
        (line,) = stream.getvalue().splitlines()
        record = json.loads(line)
        assert record["event"] == "thing_happened"
        assert record["logger"] == "repro.test"
        assert record["level"] == "info"
        assert record["tables"] == 3 and record["ok"] is True
        assert "ts" in record

    def test_off_emits_nothing(self):
        stream = io.StringIO()
        configure_logging(level="off", format="json", stream=stream)
        logger = get_logger("repro.test")
        assert not logger.enabled("info")
        logger.info("ignored")
        assert stream.getvalue() == ""

    def test_debug_requires_debug_level(self):
        stream = io.StringIO()
        configure_logging(level="info", format="json", stream=stream)
        get_logger("repro.test").debug("chatty")
        assert stream.getvalue() == ""
        configure_logging(level="debug", format="json", stream=stream)
        get_logger("repro.test").debug("chatty")
        assert "chatty" in stream.getvalue()

    def test_text_format_is_line_oriented(self):
        stream = io.StringIO()
        configure_logging(level="info", format="text", stream=stream)
        get_logger("repro.test").info("built", tables=2)
        line = stream.getvalue()
        assert "built" in line and "tables=2" in line

    def test_config_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        monkeypatch.setenv("REPRO_LOG_FORMAT", "text")
        config = LogConfig.from_env()
        assert config.level == 2 and config.format == "text"
        monkeypatch.setenv("REPRO_LOG", "1")  # truthy spelling → info
        assert LogConfig.from_env().level == 1
        monkeypatch.delenv("REPRO_LOG")
        assert LogConfig.from_env().level == 0


# --------------------------------------------------------------------------- #
# Profiling hooks
# --------------------------------------------------------------------------- #
class TestProfiling:
    def teardown_method(self):
        configure_logging(level="off")

    def test_threshold_parses_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_QUERY_MS", raising=False)
        assert slow_query_threshold_ms() is None
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "250")
        assert slow_query_threshold_ms() == 250.0
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "not-a-number")
        assert slow_query_threshold_ms() is None
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "-5")
        assert slow_query_threshold_ms() is None

    def test_slow_query_dumps_the_span_tree(self):
        stream = io.StringIO()
        configure_logging(level="info", format="json", stream=stream)
        with start_trace("query") as root:
            with span("verify"):
                pass
        assert maybe_log_slow_query(root.to_dict(), threshold_ms=0.0)
        record = json.loads(stream.getvalue())
        assert record["event"] == "slow_query"
        assert record["trace_id"] == root.trace_id
        assert stage_names(record["spans"]) == {"query", "verify"}

    def test_fast_query_is_not_logged(self):
        stream = io.StringIO()
        configure_logging(level="info", format="json", stream=stream)
        with start_trace("query") as root:
            pass
        assert not maybe_log_slow_query(root.to_dict(), threshold_ms=1e9)
        assert stream.getvalue() == ""

    def test_profile_block_captures_the_enclosed_calls(self):
        def busy_helper():
            return sum(range(500))

        with profile_block() as capture:
            busy_helper()
        text = capture.text(top=10)
        assert "busy_helper" in text


# --------------------------------------------------------------------------- #
# Cross-process stitching: the real worker loop over an in-process pipe
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def worker_conn(tiny_fcm_config, small_records):
    """The parent end of a pipe served by the *real* ``_worker_main`` loop.

    Runs the worker in a thread (this container cannot reliably fork), which
    is exactly right here: the property under test is the pipe protocol and
    the span stitching, not process isolation.
    """
    model = FCMModel(tiny_fcm_config)
    parent_conn, child_conn = multiprocessing.Pipe()
    thread = threading.Thread(
        target=_worker_main,
        args=(child_conn, model.config, model.state_dict()),
        daemon=True,
    )
    thread.start()
    kind, payload = parent_conn.recv()
    assert kind == "ready", payload

    scorer = FCMScorer(model)
    tables = [record.table for record in small_records[:3]]
    scorer.index_repository(tables)
    encoded = [scorer.encoded_table(t.table_id) for t in tables]
    parent_conn.send(("sync", encoded, []))
    kind, payload = parent_conn.recv()
    assert kind == "ok", payload

    record = small_records[0]
    chart = render_chart_for_table(
        record.table, list(record.spec.y_columns), x_column=record.spec.x_column
    )
    chart_input = scorer.prepare_query(chart)
    table_ids = [t.table_id for t in tables]
    yield parent_conn, chart_input, table_ids
    parent_conn.send(("stop",))
    thread.join(timeout=10)
    parent_conn.close()


class TestWorkerTraceStitching:
    def test_untraced_score_carries_no_span_tree(self, worker_conn):
        conn, chart_input, table_ids = worker_conn
        conn.send(("score", chart_input, table_ids, None))
        kind, (scores, tree) = conn.recv()
        assert kind == "ok"
        assert set(scores) == set(table_ids)
        assert tree is None

    def test_trace_id_round_trips_with_a_stitched_worker_tree(
        self, worker_conn
    ):
        conn, chart_input, table_ids = worker_conn
        trace_id = mint_query_id()
        conn.send(("score", chart_input, table_ids, trace_id))
        kind, (scores, tree) = conn.recv()
        assert kind == "ok"
        assert set(scores) == set(table_ids)
        assert tree["name"] == "worker"
        assert tree["trace_id"] == trace_id
        assert {"shard_score", "encode_chart"} <= stage_names(tree)
        # The one-time deferred rehydrate span rides on the first traced
        # reply only.
        assert "rehydrate" in stage_names(tree)
        conn.send(("score", chart_input, table_ids, mint_query_id()))
        _, (_, second_tree) = conn.recv()
        assert "rehydrate" not in stage_names(second_tree)

    def test_worker_tree_records_durations_not_wallclock(self, worker_conn):
        conn, chart_input, table_ids = worker_conn
        conn.send(("score", chart_input, table_ids, mint_query_id()))
        _, (_, tree) = conn.recv()

        def walk(node):
            assert node["duration_ms"] >= 0.0
            assert "start" not in node and "ts" not in node
            for child in node["children"]:
                walk(child)

        walk(tree)
