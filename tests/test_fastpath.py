"""Tests for :mod:`repro.fcm.fastpath`: fused kernels + quantized pre-filter.

Four contracts are pinned down here:

* **fused == graphed** — the fused inference kernels must reproduce the
  batched Tensor path's scores (bitwise in float64, rounding noise in
  float32) across matcher variants, chunkings and the worker-pool path,
  and the per-call ``fused=`` override must win over the scorer-wide flag;
* **quantization edge cases** — all-zero tables take the ``scale = 0.0``
  guard, round-trip error respects the symmetric-quantization bound, and
  the pooled pack's geometry/masks mirror the encodings;
* **pre-filter semantics** — overscan covers-all is the identity, the kept
  set is deterministic, the serving flag validates, and on the *trained*
  fixture the top-k recall against exact scoring holds the pinned floor;
* **q8 sidecar persistence** — v2 snapshots round-trip the quantized copy
  exactly, v1 → v2 compaction builds it, snapshots without the sidecar
  (older writers) requantize lazily to identical rankings, and corrupt
  sidecars surface :class:`SnapshotError` instead of garbage rankings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.charts import ChartSpec, render_chart_for_table
from repro.data import Column, Table
from repro.fcm import FCMConfig, FCMModel, FCMScorer
from repro.fcm.fastpath import (
    PREFILTER_DTYPE,
    PREFILTER_POOL,
    FusedMatchKernel,
    build_coarse_cache,
    build_quantized_pack,
    coarse_scores,
    quantize_table,
    quantized_scores,
)
from repro.index import LSHConfig
from repro.obs import get_registry
from repro.serving import (
    SearchService,
    ServingConfig,
    SnapshotError,
    compact_snapshot,
)
from repro.serving import persistence

from conftest import active_dtype, dtype_tol


def _tiny_config(**overrides) -> FCMConfig:
    base = dict(
        embed_dim=16,
        num_heads=2,
        num_layers=1,
        data_segment_size=32,
        beta=2,
        max_data_segments=4,
    )
    base.update(overrides)
    return FCMConfig(**base)


def _make_repository(num_tables: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    tables = []
    for i in range(num_tables):
        n = int(rng.integers(60, 200))
        columns = [Column("x", np.arange(n, dtype=float), role="x")]
        for c in range(int(rng.integers(1, 5))):
            offset = float(rng.standard_normal()) * 4.0
            columns.append(
                Column(f"y{c}", offset + np.cumsum(rng.standard_normal(n)), role="y")
            )
        tables.append(Table(f"tbl{i:03d}", columns))
    return tables


@pytest.fixture(scope="module")
def repository():
    return _make_repository(10)


@pytest.fixture(scope="module")
def query_chart(repository):
    table = repository[0]
    lines = [c.name for c in table.columns if c.role == "y"][:2]
    return render_chart_for_table(table, lines, x_column="x", spec=ChartSpec())


def _make_service(model, **config_kwargs) -> SearchService:
    config_kwargs.setdefault("lsh_config", LSHConfig(num_bits=6, hamming_radius=1))
    return SearchService(model, ServingConfig(**config_kwargs))


# --------------------------------------------------------------------------- #
# Fused kernels vs the graphed batched path
# --------------------------------------------------------------------------- #
class TestFusedParity:
    @pytest.fixture(
        scope="class", params=["hcman+da", "hcman-only", "averaged"]
    )
    def scorer(self, request, repository):
        variant = {
            "hcman+da": dict(use_hcman=True, enable_da_layers=True),
            "hcman-only": dict(use_hcman=True, enable_da_layers=False),
            "averaged": dict(use_hcman=False, enable_da_layers=True),
        }[request.param]
        scorer = FCMScorer(FCMModel(_tiny_config(**variant)))
        scorer.index_repository(repository)
        return scorer

    def test_fused_matches_graphed_scores(self, scorer, query_chart):
        fused = scorer.score_chart_batch(query_chart, fused=True)
        graphed = scorer.score_chart_batch(query_chart, fused=False)
        assert set(fused) == set(graphed)
        for table_id, score in graphed.items():
            assert fused[table_id] == pytest.approx(
                score, abs=dtype_tol(1e-8, 5e-5)
            )
        if active_dtype() == np.float64:
            # Same NumPy expressions in the same order: bitwise equality.
            assert fused == graphed

    def test_fused_chunked_matches_single_batch(self, scorer, query_chart):
        full = scorer.score_chart_batch(query_chart, batch_size=None, fused=True)
        chunked = scorer.score_chart_batch(query_chart, batch_size=3, fused=True)
        for table_id, score in full.items():
            assert chunked[table_id] == pytest.approx(
                score, abs=dtype_tol(1e-8, 5e-5)
            )

    def test_kernel_supported_for_shipped_matchers(self, scorer):
        kernel = scorer._fused_kernel()
        assert kernel is not None and kernel.supported

    def test_unsupported_matcher_reports_and_falls_back(
        self, scorer, query_chart, monkeypatch
    ):
        class _ForeignMatcher:
            pass

        dead = FusedMatchKernel(_ForeignMatcher())
        assert not dead.supported
        monkeypatch.setattr(scorer, "_kernel", dead)
        assert scorer._fused_kernel() is None
        # fused=True silently degrades to the graphed path, same scores.
        fused = scorer.score_chart_batch(query_chart, fused=True)
        graphed = scorer.score_chart_batch(query_chart, fused=False)
        assert fused == graphed

    def test_scratch_pool_reused_across_calls(self, repository, query_chart):
        scorer = FCMScorer(FCMModel(_tiny_config()))
        scorer.index_repository(repository)
        scorer.score_chart_batch(query_chart, fused=True)
        kernel = scorer._fused_kernel()
        first_misses = kernel.pool.misses
        assert first_misses > 0
        scorer.score_chart_batch(query_chart, fused=True)
        assert kernel.pool.misses == first_misses  # arenas served every op
        assert kernel.pool.hits > 0

    def test_pad_cache_counts_hits_and_misses(self, repository, query_chart):
        scorer = FCMScorer(FCMModel(_tiny_config()))
        scorer.index_repository(repository)
        counter = get_registry().counter("repro_pad_cache_total")
        hits_before = counter.value(result="hit")
        misses_before = counter.value(result="miss")
        scorer.score_chart_batch(query_chart, fused=True)
        assert counter.value(result="miss") > misses_before
        misses_after_first = counter.value(result="miss")
        # The graphed path shares the cache: same chunks, no new misses.
        scorer.score_chart_batch(query_chart, fused=False)
        assert counter.value(result="miss") == misses_after_first
        assert counter.value(result="hit") > hits_before


class TestServingFusedParity:
    def test_per_call_override_and_config_flag(self, small_records):
        model = FCMModel(_tiny_config())
        tables = [record.table for record in small_records[:6]]
        chart = render_chart_for_table(
            small_records[0].table,
            list(small_records[0].spec.y_columns),
            x_column=small_records[0].spec.x_column,
            spec=model.config.chart_spec,
        )
        fused_service = _make_service(model, result_cache_size=0)
        fused_service.build(tables)
        graphed_service = _make_service(model, fused=False, result_cache_size=0)
        graphed_service.build(tables)
        assert fused_service.scorer.fused
        assert not graphed_service.scorer.fused
        a = fused_service.query(chart, k=5, strategy="none")
        b = graphed_service.query(chart, k=5, strategy="none")
        override = fused_service.query(chart, k=5, strategy="none", fused=False)
        for other in (b, override):
            assert [t for t, _ in a.ranking] == [t for t, _ in other.ranking]
            for (_, sa), (_, sb) in zip(a.ranking, other.ranking):
                assert abs(sa - sb) <= dtype_tol(1e-8, 5e-5)

    def test_worker_pool_matches_in_process(self, small_records):
        model = FCMModel(_tiny_config())
        tables = [record.table for record in small_records[:6]]
        chart = render_chart_for_table(
            small_records[1].table,
            list(small_records[1].spec.y_columns),
            x_column=small_records[1].spec.x_column,
            spec=model.config.chart_spec,
        )
        in_process = _make_service(model, result_cache_size=0)
        in_process.build(tables)
        pooled = _make_service(
            model, query_workers=2, result_cache_size=0, worker_timeout=120.0
        )
        pooled.build(tables)
        try:
            for fused in (None, False):
                a = in_process.query(chart, k=5, strategy="none", fused=fused)
                b = pooled.query(chart, k=5, strategy="none", fused=fused)
                assert [t for t, _ in a.ranking] == [t for t, _ in b.ranking]
                for (_, sa), (_, sb) in zip(a.ranking, b.ranking):
                    assert abs(sa - sb) <= dtype_tol(1e-8, 5e-5)
            if pooled.worker_fallback_reason is None:
                assert pooled.stats.worker_queries > 0
        finally:
            pooled.close()


# --------------------------------------------------------------------------- #
# Quantization edge cases and pack geometry
# --------------------------------------------------------------------------- #
class TestQuantization:
    def test_all_zero_table_takes_scale_zero_guard(self):
        quantized = quantize_table(np.zeros((2, 3, 4)))
        assert quantized.scale == 0.0
        assert quantized.codes.shape == (2, 3, 4)
        assert quantized.codes.dtype == np.int8
        assert not quantized.codes.any()

    def test_non_finite_amax_takes_scale_zero_guard(self):
        reps = np.zeros((1, 2, 3))
        reps[0, 0, 0] = np.inf
        assert quantize_table(reps).scale == 0.0

    def test_roundtrip_error_within_half_scale(self):
        rng = np.random.default_rng(5)
        reps = rng.standard_normal((3, 4, 8))
        quantized = quantize_table(reps)
        dequantized = quantized.codes.astype(np.float64) * quantized.scale
        assert np.max(np.abs(dequantized - reps)) <= quantized.scale / 2 + 1e-12

    def test_pack_pools_and_masks_geometry(self):
        rng = np.random.default_rng(7)
        items = [
            ("a", quantize_table(rng.standard_normal((1, 5, 8)))),
            ("b", quantize_table(rng.standard_normal((3, 2, 8)))),
            ("zero", quantize_table(np.zeros((2, 1, 8)))),
        ]
        pack = build_quantized_pack(items, pool=2)
        # NS_max = ceil(5 / 2) = 3, NC_max = 3.
        assert pack.codes.shape == (3, 3, 3, 8)
        assert pack.pool == 2
        assert pack.segment_mask[0].sum() == 1 * 3  # 5 rows -> 3 pooled
        assert pack.segment_mask[1].sum() == 3 * 1  # 2 rows -> 1 pooled
        assert pack.column_mask.tolist() == [
            [True, False, False],
            [True, True, True],
            [True, True, False],
        ]
        assert pack.scales[2] == 0.0  # all-zero table keeps the guard

    def test_scores_run_real_matcher_and_unknown_ids_sink(self, repository):
        scorer = FCMScorer(FCMModel(_tiny_config()))
        scorer.index_repository(repository[:4])
        pack = scorer.quantized_pack()
        assert pack.pool == PREFILTER_POOL
        chart = np.zeros((1, 2, 16))
        calls = []

        def score_fn(chart_repr, batch, segment_mask, column_mask):
            calls.append(batch.shape)
            return np.arange(batch.shape[0], dtype=np.float64)

        ids = list(pack.table_ids) + ["missing"]
        scores = quantized_scores(pack, chart, ids, score_fn)
        assert calls and calls[0][0] == len(pack.table_ids)
        assert scores[-1] == -np.inf
        assert np.all(np.isfinite(scores[:-1]))

    def test_empty_pack_scores_nothing(self):
        pack = build_quantized_pack([])
        scores = quantized_scores(
            pack, np.zeros((1, 1, 4)), ["anything"], lambda *a: np.zeros(1)
        )
        assert scores.tolist() == [-np.inf]


# --------------------------------------------------------------------------- #
# Prebuilt coarse cache (query-independent table-side projections)
# --------------------------------------------------------------------------- #
class TestCoarseCache:
    @pytest.fixture(scope="class", params=["hcman", "averaged"])
    def scorer(self, request, repository):
        scorer = FCMScorer(
            FCMModel(_tiny_config(use_hcman=request.param == "hcman"))
        )
        scorer.index_repository(repository)
        return scorer

    def _chart_repr(self, scorer, query_chart) -> np.ndarray:
        chart_input = scorer.prepare_query(query_chart)
        with scorer.model.inference():
            chart_repr = scorer.model.encode_chart(chart_input)
        return np.ascontiguousarray(chart_repr.numpy()).astype(PREFILTER_DTYPE)

    def test_cached_scores_match_unprojected_coarse_pass(
        self, scorer, query_chart
    ):
        """The cache only moves query-independent work: per-id scores equal
        the chunk-wise dequantize-then-project flow at PREFILTER_DTYPE."""
        pack = scorer.quantized_pack()
        kernel = scorer._fused_kernel()
        cache = build_coarse_cache(kernel, pack)
        chart = self._chart_repr(scorer, query_chart)
        ids = list(pack.table_ids) + ["missing"]
        cached = coarse_scores(kernel, pack, cache, chart, ids)

        def score_fn(chart_repr, batch, segment_mask, column_mask):
            return kernel.score_batch(
                chart_repr, batch, segment_mask, column_mask, exact=False
            )

        reference = quantized_scores(pack, chart, ids, score_fn)
        assert cached[-1] == -np.inf
        np.testing.assert_allclose(cached[:-1], reference[:-1], atol=1e-5)

    def test_cache_shape_matches_matcher_variant(self, scorer):
        pack = scorer.quantized_pack()
        cache = build_coarse_cache(scorer._fused_kernel(), pack)
        if scorer.model.config.use_hcman:
            assert cache.table_vecs is None
            t, nc, ns, dim = pack.codes.shape
            assert cache.keys.shape[:2] == (t, nc * ns)
            assert cache.table_values.shape[:3] == (t, nc, ns)
            assert cache.keys.dtype == PREFILTER_DTYPE
        else:
            assert cache.keys is None and cache.table_values is None
            assert cache.table_vecs.shape[0] == len(pack.table_ids)

    def test_scoring_does_not_mutate_the_cache(self, scorer, query_chart):
        pack = scorer.quantized_pack()
        kernel = scorer._fused_kernel()
        cache = build_coarse_cache(kernel, pack)
        snapshots = [
            arr.copy()
            for arr in (cache.keys, cache.table_values, cache.table_vecs)
            if arr is not None
        ]
        chart = self._chart_repr(scorer, query_chart)
        first = coarse_scores(kernel, pack, cache, chart, list(pack.table_ids))
        second = coarse_scores(kernel, pack, cache, chart, list(pack.table_ids))
        np.testing.assert_array_equal(first, second)
        for snapshot, arr in zip(
            snapshots,
            [
                a
                for a in (cache.keys, cache.table_values, cache.table_vecs)
                if a is not None
            ],
        ):
            np.testing.assert_array_equal(snapshot, arr)

    def test_subset_and_unsorted_candidates_use_the_lookup_path(
        self, scorer, query_chart
    ):
        pack = scorer.quantized_pack()
        kernel = scorer._fused_kernel()
        cache = build_coarse_cache(kernel, pack)
        chart = self._chart_repr(scorer, query_chart)
        everything = coarse_scores(
            kernel, pack, cache, chart, sorted(pack.table_ids)
        )
        by_id = dict(zip(sorted(pack.table_ids), everything))
        subset = list(reversed(sorted(pack.table_ids)))[:5] + ["nope"]
        scores = coarse_scores(kernel, pack, cache, chart, subset)
        assert scores[-1] == -np.inf
        # Not bitwise: BLAS blocking may differ with the batch row count.
        for table_id, score in zip(subset[:-1], scores[:-1]):
            np.testing.assert_allclose(score, by_id[table_id], atol=1e-6)

    def test_scorer_invalidates_cache_with_the_pack(
        self, repository, query_chart
    ):
        scorer = FCMScorer(FCMModel(_tiny_config()))
        scorer.index_repository(repository)
        ids = scorer.indexed_table_ids
        chart_input = scorer.prepare_query(query_chart)
        scorer.prefilter_ids(chart_input, ids, 4)
        assert scorer._coarse_cache is not None
        first_cache = scorer._coarse_cache
        assert scorer.evict_table(ids[-1])
        assert scorer._coarse_cache is None
        kept = scorer.prefilter_ids(chart_input, ids[:-1], 4)
        assert scorer._coarse_cache is not first_cache
        assert set(kept) <= set(ids[:-1])


# --------------------------------------------------------------------------- #
# Pre-filter semantics through the scorer and the serving config
# --------------------------------------------------------------------------- #
class TestPrefilter:
    def test_keep_covering_all_is_identity(self, repository, query_chart):
        scorer = FCMScorer(FCMModel(_tiny_config()))
        scorer.index_repository(repository)
        ids = scorer.indexed_table_ids
        chart_input = scorer.prepare_query(query_chart)
        assert scorer.prefilter_ids(chart_input, ids, len(ids)) == ids
        assert scorer.prefilter_ids(chart_input, ids, len(ids) + 5) == ids

    def test_kept_set_is_deterministic_subset(self, repository, query_chart):
        scorer = FCMScorer(FCMModel(_tiny_config()))
        scorer.index_repository(repository)
        ids = scorer.indexed_table_ids
        chart_input = scorer.prepare_query(query_chart)
        kept = scorer.prefilter_ids(chart_input, ids, 4)
        assert len(kept) == 4
        assert set(kept) <= set(ids)
        assert kept == sorted(kept)
        assert kept == scorer.prefilter_ids(chart_input, ids, 4)

    def test_prefilter_falls_back_without_fused_kernel(
        self, repository, query_chart, monkeypatch
    ):
        scorer = FCMScorer(FCMModel(_tiny_config()))
        scorer.index_repository(repository)
        ids = scorer.indexed_table_ids
        chart_input = scorer.prepare_query(query_chart)
        kept_fused = scorer.prefilter_ids(chart_input, ids, 4)
        monkeypatch.setattr(scorer, "_fused_kernel", lambda: None)
        kept_graphed = scorer.prefilter_ids(chart_input, ids, 4)
        if active_dtype() == np.float64:
            assert kept_fused == kept_graphed

    def test_serving_flag_marks_result_and_bounds_keep(self, small_records):
        model = FCMModel(_tiny_config())
        tables = [record.table for record in small_records[:8]]
        chart = render_chart_for_table(
            small_records[2].table,
            list(small_records[2].spec.y_columns),
            x_column=small_records[2].spec.x_column,
            spec=model.config.chart_spec,
        )
        service = _make_service(
            model,
            quantized_prefilter=True,
            prefilter_overscan=2,
            result_cache_size=0,
        )
        service.build(tables)
        result = service.query(chart, k=2, strategy="none")
        assert result.prefiltered == 2 * 2
        assert len(result.ranking) == 2
        exact = _make_service(model, result_cache_size=0)
        exact.build(tables)
        assert {t for t, _ in result.ranking} <= {
            t for t, _ in exact.query(chart, k=8, strategy="none").ranking
        }

    def test_overscan_validation(self):
        with pytest.raises(ValueError, match="prefilter_overscan"):
            ServingConfig(
                lsh_config=LSHConfig(num_bits=6), prefilter_overscan=0
            )

    @pytest.mark.slow
    def test_recall_floor_on_trained_fixture(self):
        from repro.bench.fixture import trained_fixture_model
        from repro.data import SynthConfig, synth_query_charts, synth_tables

        config = FCMConfig(
            embed_dim=32,
            num_heads=2,
            num_layers=1,
            data_segment_size=32,
            max_data_segments=8,
            beta=2,
        )
        model = trained_fixture_model(config)
        corpus = SynthConfig(
            num_tables=300, num_rows=256, max_columns=3, num_clusters=16, seed=11
        )
        exact = SearchService(
            model,
            ServingConfig(lsh_config=LSHConfig(num_bits=16), result_cache_size=0),
        )
        exact.build(synth_tables(corpus))
        approx = SearchService(
            model,
            ServingConfig(
                lsh_config=LSHConfig(num_bits=16),
                result_cache_size=0,
                quantized_prefilter=True,
            ),
        )
        approx.build(synth_tables(corpus))
        recalls = []
        for _, chart in synth_query_charts(corpus, 5):
            exact_ids = {
                t for t, _ in exact.query(chart, k=10, strategy="none").ranking
            }
            approx_ids = {
                t for t, _ in approx.query(chart, k=10, strategy="none").ranking
            }
            recalls.append(len(exact_ids & approx_ids) / max(len(exact_ids), 1))
        # The coarse score is the real matcher on pooled int8 input, so the
        # exact top-k survives the default-overscan cut essentially always.
        assert float(np.mean(recalls)) >= 0.99, recalls


# --------------------------------------------------------------------------- #
# q8 sidecar persistence
# --------------------------------------------------------------------------- #
class TestQuantizedSidecar:
    def _service(self, model, tables):
        service = _make_service(model, result_cache_size=0)
        service.build(tables)
        return service

    def test_v2_roundtrips_quantized_copy_exactly(
        self, small_records, tmp_path
    ):
        model = FCMModel(_tiny_config())
        tables = [record.table for record in small_records[:5]]
        service = self._service(model, tables)
        path = service.save_index(tmp_path / "idx.npz", layout="v2")
        assert (tmp_path / "idx.g0001.q8.npy").exists()
        assert (tmp_path / "idx.g0001.qscale.npy").exists()
        loaded = SearchService.load_index(
            model, path, ServingConfig(lsh_config=LSHConfig(num_bits=6))
        )
        for table_id in service.table_ids:
            live = service.scorer.encoded_table(table_id).quantized
            restored = loaded.scorer.encoded_table(table_id).quantized
            assert restored is not None
            assert restored.codes.shape == live.codes.shape
            assert np.array_equal(restored.codes, live.codes)
            assert restored.scale == live.scale

    def test_v1_to_v2_compaction_builds_sidecar(self, small_records, tmp_path):
        model = FCMModel(_tiny_config())
        tables = [record.table for record in small_records[:4]]
        service = self._service(model, tables)
        path = service.save_index(tmp_path / "idx.npz", layout="v1")
        compact_snapshot(path, layout="v2")
        assert list(tmp_path.glob("idx.g*.q8.npy"))
        loaded = SearchService.load_index(
            model, path, ServingConfig(lsh_config=LSHConfig(num_bits=6))
        )
        for table_id in service.table_ids:
            live = service.scorer.encoded_table(table_id).quantized
            restored = loaded.scorer.encoded_table(table_id).quantized
            assert np.array_equal(restored.codes, live.codes)
            assert restored.scale == live.scale

    def test_snapshot_without_sidecar_requantizes_lazily(
        self, small_records, tmp_path, monkeypatch
    ):
        model = FCMModel(_tiny_config())
        tables = [record.table for record in small_records[:5]]
        chart = render_chart_for_table(
            small_records[0].table,
            list(small_records[0].spec.y_columns),
            x_column=small_records[0].spec.x_column,
            spec=model.config.chart_spec,
        )
        service = self._service(model, tables)
        # Simulate a pre-q8 writer: drop the new kinds for this save only.
        monkeypatch.setattr(
            persistence, "_SIDECAR_KINDS", ("reps", "colemb", "codes")
        )
        path = service.save_index(tmp_path / "old.npz", layout="v2")
        monkeypatch.undo()
        assert not list(tmp_path.glob("old.g*.q8.npy"))
        loaded = SearchService.load_index(
            model,
            path,
            ServingConfig(
                lsh_config=LSHConfig(num_bits=6),
                quantized_prefilter=True,
                prefilter_overscan=1,
                result_cache_size=0,
            ),
        )
        first = loaded.scorer.encoded_table(loaded.table_ids[0])
        assert first.quantized is None  # nothing eager on load
        result = loaded.query(chart, k=2, strategy="none")
        assert result.prefiltered == 2
        # Lazy requantization reproduces the live quantized copy exactly.
        live = service.scorer.encoded_table(loaded.table_ids[0]).quantized
        assert np.array_equal(first.quantized.codes, live.codes)

    def test_corrupt_q8_sidecar_surfaces_snapshot_error(
        self, small_records, tmp_path
    ):
        model = FCMModel(_tiny_config())
        tables = [record.table for record in small_records[:4]]
        service = self._service(model, tables)
        path = service.save_index(tmp_path / "idx.npz", layout="v2")
        sidecar = next(tmp_path.glob("idx.g*.q8.npy"))
        np.save(sidecar, np.zeros(3, dtype=np.int8))
        with pytest.raises(SnapshotError, match=r"q8\.npy is truncated"):
            SearchService.load_index(
                model, path, ServingConfig(lsh_config=LSHConfig(num_bits=6))
            )

    def test_missing_q8_sidecar_surfaces_snapshot_error(
        self, small_records, tmp_path
    ):
        model = FCMModel(_tiny_config())
        tables = [record.table for record in small_records[:4]]
        service = self._service(model, tables)
        path = service.save_index(tmp_path / "idx.npz", layout="v2")
        sidecar = next(tmp_path.glob("idx.g*.q8.npy"))
        sidecar.unlink()
        with pytest.raises(SnapshotError, match=sidecar.name):
            SearchService.load_index(
                model, path, ServingConfig(lsh_config=LSHConfig(num_bits=6))
            )
