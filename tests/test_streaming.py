"""Streaming ingest + standing subscriptions: parity with a full rebuild.

The tentpole property: a service that grew through any interleaving of
``append_rows`` / ``add_tables`` / ``remove_tables`` must be
indistinguishable — interval set, LSH buckets, candidate sets, query
rankings — from a fresh service that registered the same statics and
replayed each stream's full history in a single append.  Window
partitioning is a pure function of the row count, so the incremental and
the replayed stream encode byte-identical segments; everything else
follows.

On top of the parity core: subscription delivery semantics (fires within
one ingest batch, bounded queues, callback isolation), fault injection
(raising callbacks, worker death mid-ingest, snapshots under live
subscriptions) and the observability surface (trace spans + ingest
metrics).
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.charts import render_chart_for_table
from repro.data import Column, Table
from repro.fcm import FCMModel, FCMScorer
from repro.index import LSHConfig
from repro.obs import get_registry
from repro.serving import (
    STREAM_SEGMENT_SEP,
    SearchService,
    ServingConfig,
    StreamingConfig,
    append_stream_rows,
    segment_table_id,
)

from conftest import active_dtype, dtype_tol

#: Streaming window used throughout: small enough that a handful of rows
#: spans several segments.
WINDOW = 32
STRATEGIES = ("none", "interval", "lsh", "hybrid")
SHARD_TIMEOUT_SECONDS = 120.0


@pytest.fixture(scope="module")
def stream_model(tiny_fcm_config):
    return FCMModel(tiny_fcm_config)


@pytest.fixture(scope="module")
def static_tables(small_records):
    return [record.table for record in small_records]


@pytest.fixture(scope="module")
def query_charts(small_records, tiny_fcm_config):
    charts = []
    for record in small_records[:3]:
        charts.append(
            render_chart_for_table(
                record.table,
                list(record.spec.y_columns),
                x_column=record.spec.x_column,
                spec=tiny_fcm_config.chart_spec,
            )
        )
    return charts


def _make_service(model, **config_kwargs) -> SearchService:
    config_kwargs.setdefault("lsh_config", LSHConfig(num_bits=6, hamming_radius=1))
    config_kwargs.setdefault("streaming", StreamingConfig(segment_rows=WINDOW))
    return SearchService(model, ServingConfig(**config_kwargs))


def _batch(rng, size: int, start: int) -> dict:
    return {
        "x": np.arange(start, start + size, dtype=float),
        "y": np.cumsum(rng.normal(0.0, 1.0, size)) + 10.0 * rng.standard_normal(),
    }


def _append(service, stream_id: str, rows: dict, histories: dict):
    created = stream_id not in histories
    result = service.append_rows(
        stream_id, rows, roles={"x": "x"} if created else None
    )
    histories.setdefault(stream_id, []).append(rows)
    return result


def _replay_service(model, tables, histories) -> SearchService:
    """The parity reference: statics + each stream's history in ONE append."""
    reference = _make_service(model)
    reference.build(list(tables))
    for stream_id, batches in histories.items():
        full = {
            name: np.concatenate([rows[name] for rows in batches])
            for name in batches[0]
        }
        reference.append_rows(stream_id, full, roles={"x": "x"})
    return reference


def _assert_rankings_match(a, b, tolerance=None):
    if tolerance is None:
        tolerance = dtype_tol(1e-8, 5e-5)
    if active_dtype() == np.float64:
        assert [t for t, _ in a.ranking] == [t for t, _ in b.ranking]
        for (_, score_a), (_, score_b) in zip(a.ranking, b.ranking):
            assert abs(score_a - score_b) <= tolerance
        return
    scores_a, scores_b = dict(a.ranking), dict(b.ranking)
    for tid in set(scores_a) & set(scores_b):
        assert abs(scores_a[tid] - scores_b[tid]) <= tolerance
    for (ta, score_a), (tb, score_b) in zip(a.ranking, b.ranking):
        if ta != tb:
            assert abs(score_a - score_b) <= tolerance, (ta, tb)


def _interval_set(tree):
    return {(iv.low, iv.high, iv.table_id, iv.column_name) for iv in tree.intervals}


def _assert_stream_equivalent(service, reference, charts):
    assert sorted(service.table_ids) == sorted(reference.table_ids)
    assert service.processor.streams == reference.processor.streams
    assert _interval_set(service.processor.interval_tree) == _interval_set(
        reference.processor.interval_tree
    )
    assert service.processor.lsh.buckets == reference.processor.lsh.buckets
    assert (
        service.processor.lsh.export_codes()
        == reference.processor.lsh.export_codes()
    )
    for parent, segments in service.processor.streams.items():
        for seg_id in segments:
            ours = service.scorer.encoded_table(seg_id)
            theirs = reference.scorer.encoded_table(seg_id)
            assert np.array_equal(ours.representations, theirs.representations)
    for chart in charts:
        for strategy in STRATEGIES:
            assert service.processor.candidates(chart, strategy) == (
                reference.processor.candidates(chart, strategy)
            )
            _assert_rankings_match(
                service.query(chart, k=5, strategy=strategy),
                reference.query(chart, k=5, strategy=strategy),
            )


def _pattern_chart(model_config, rows: dict):
    table = Table(
        "pattern-query",
        [
            Column("x", np.asarray(rows["x"], dtype=float), role="x"),
            Column("y", np.asarray(rows["y"], dtype=float), role="y"),
        ],
    )
    return render_chart_for_table(
        table, ["y"], x_column="x", spec=model_config.chart_spec
    )


def _preview_segment_score(model, chart, rows: dict, lo: int, hi: int) -> float:
    """Score the future segment [lo, hi) exactly as ingest will encode it."""
    preview = FCMScorer(model)
    preview.index_table(
        Table(
            "preview-seg",
            [
                Column("x", np.asarray(rows["x"], dtype=float)[lo:hi], role="x"),
                Column("y", np.asarray(rows["y"], dtype=float)[lo:hi], role="y"),
            ],
        )
    )
    chart_input = preview.prepare_query(chart)
    return preview.score_encoded_batch(chart_input, ["preview-seg"])["preview-seg"]


# --------------------------------------------------------------------------- #
# append_rows basics: windowing, validation, eviction
# --------------------------------------------------------------------------- #
class TestAppendRows:
    def test_append_creates_stream_and_partitions_into_windows(
        self, stream_model, static_tables
    ):
        service = _make_service(stream_model)
        service.build(static_tables[:3])
        rng = np.random.default_rng(0)
        result = service.append_rows("live", _batch(rng, 80, 0), roles={"x": "x"})
        assert result.created
        assert result.total_rows == 80
        assert result.segments_total == 3  # 32 + 32 + 16-row tail window
        assert result.dirty_segments == [
            segment_table_id("live", 0),
            segment_table_id("live", 1),
            segment_table_id("live", 2),
        ]
        assert "live" in service.table_ids
        assert service.stats.rows_appended == 80
        assert service.stats.append_batches == 1

    def test_tail_append_reencodes_strict_subset(self, stream_model, static_tables):
        service = _make_service(stream_model)
        service.build(static_tables[:3])
        rng = np.random.default_rng(1)
        service.append_rows("live", _batch(rng, 80, 0), roles={"x": "x"})
        result = service.append_rows("live", _batch(rng, 10, 80))
        # Rows 80..90 touch only window 2: sealed windows never re-encode.
        assert result.dirty_segments == [segment_table_id("live", 2)]
        assert result.segments_total == 3
        assert result.reencode_fraction < 1.0
        assert result.reencode_fraction == pytest.approx(1.0 / 3.0)

    def test_segment_ids_hidden_from_rankings_parent_visible(
        self, stream_model, static_tables, query_charts
    ):
        service = _make_service(stream_model)
        service.build(static_tables[:3])
        rng = np.random.default_rng(2)
        service.append_rows("live", _batch(rng, 70, 0), roles={"x": "x"})
        for strategy in STRATEGIES:
            ranked_ids = [
                t for t, _ in service.query(query_charts[0], k=10, strategy=strategy).ranking
            ]
            # Pruning strategies may drop the stream; none/interval rank it.
            if strategy in ("none", "interval"):
                assert "live" in ranked_ids
            assert not any(STREAM_SEGMENT_SEP in t for t in ranked_ids)

    def test_append_to_static_table_rejected(self, stream_model, static_tables):
        service = _make_service(stream_model)
        service.build(static_tables[:3])
        taken = static_tables[0].table_id
        with pytest.raises(ValueError, match="static"):
            service.append_rows(taken, _batch(np.random.default_rng(3), 8, 0))

    def test_invalid_payloads_rejected_before_mutation(
        self, stream_model, static_tables
    ):
        service = _make_service(stream_model)
        service.build(static_tables[:3])
        rng = np.random.default_rng(4)
        service.append_rows("live", _batch(rng, 40, 0), roles={"x": "x"})
        before = service.processor.stream_states["live"]["total_rows"]
        bad_length = {"x": np.arange(5.0), "y": np.arange(4.0)}
        with pytest.raises(ValueError):
            service.append_rows("live", bad_length)
        with pytest.raises(ValueError):
            service.append_rows("live", {"x": np.arange(5.0), "z": np.arange(5.0)})
        with pytest.raises(ValueError):
            service.append_rows(
                "live", {"x": np.arange(3.0), "y": np.array([1.0, np.nan, 2.0])}
            )
        with pytest.raises(ValueError):
            service.append_rows(f"bad{STREAM_SEGMENT_SEP}id", _batch(rng, 8, 0))
        assert service.processor.stream_states["live"]["total_rows"] == before

    def test_remove_stream_cleans_segments_everywhere(
        self, stream_model, static_tables, query_charts
    ):
        service = _make_service(stream_model)
        service.build(static_tables[:3])
        rng = np.random.default_rng(5)
        service.append_rows("live", _batch(rng, 70, 0), roles={"x": "x"})
        seg_ids = list(service.processor.streams["live"])
        service.remove_tables(["live"])
        assert "live" not in service.table_ids
        assert service.processor.streams == {}
        tree_ids = {iv.table_id for iv in service.processor.interval_tree.intervals}
        for seg_id in seg_ids:
            assert seg_id not in tree_ids
            with pytest.raises(KeyError):
                service.scorer.encoded_table(seg_id)
        reference = _make_service(FCMModel(stream_model.config))
        reference.build(static_tables[:3])
        _assert_stream_equivalent(service, reference, query_charts[:1])


# --------------------------------------------------------------------------- #
# Parity: randomized interleavings vs from-scratch replay
# --------------------------------------------------------------------------- #
class TestStreamingParity:
    def test_deterministic_interleaving_50_mutations(
        self, stream_model, static_tables, query_charts
    ):
        """>= 50 mutations mixing appends, adds, removes and queries; the
        rankings must match a from-scratch rebuild at every step."""
        rng = np.random.default_rng(1234)
        service = _make_service(stream_model)
        service.build(static_tables[:4])
        live_tables = {t.table_id: t for t in static_tables[:4]}
        pool = list(static_tables[4:])
        histories: dict = {}
        stream_ids = ["stream-a", "stream-b", "stream-c"]
        mutations = 0
        step = 0
        while mutations < 50:
            step += 1
            roll = rng.random()
            if roll < 0.55:
                stream_id = stream_ids[int(rng.integers(len(stream_ids)))]
                start = sum(
                    rows["x"].size for rows in histories.get(stream_id, [])
                )
                result = _append(
                    service,
                    stream_id,
                    _batch(rng, int(rng.integers(5, 50)), start),
                    histories,
                )
                assert result.total_rows == start + result.rows_appended
                mutations += 1
            elif roll < 0.75 and pool:
                table = pool.pop()
                service.add_tables([table])
                live_tables[table.table_id] = table
                mutations += 1
            elif roll < 0.9 and (len(live_tables) > 2 or histories):
                removable = list(live_tables) + list(histories)
                victim = removable[int(rng.integers(len(removable)))]
                service.remove_tables([victim])
                live_tables.pop(victim, None)
                histories.pop(victim, None)
                mutations += 1
            reference = _replay_service(
                FCMModel(stream_model.config), live_tables.values(), histories
            )
            chart = query_charts[step % len(query_charts)]
            strategy = STRATEGIES[step % len(STRATEGIES)]
            _assert_rankings_match(
                service.query(chart, k=5, strategy=strategy),
                reference.query(chart, k=5, strategy=strategy),
            )
            if mutations % 10 == 0:
                _assert_stream_equivalent(service, reference, query_charts[:1])
        assert mutations >= 50
        reference = _replay_service(
            FCMModel(stream_model.config), live_tables.values(), histories
        )
        _assert_stream_equivalent(service, reference, query_charts)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["append", "add", "remove"]),
                st.integers(min_value=0, max_value=2 ** 31 - 1),
            ),
            min_size=3,
            max_size=8,
        )
    )
    def test_hypothesis_interleavings_match_replay(
        self, stream_model, static_tables, query_charts, ops
    ):
        service = _make_service(stream_model)
        service.build(static_tables[:3])
        live_tables = {t.table_id: t for t in static_tables[:3]}
        pool = list(static_tables[3:8])
        histories: dict = {}
        for op, seed in ops:
            rng = np.random.default_rng(seed)
            if op == "append":
                stream_id = ["s0", "s1"][seed % 2]
                start = sum(
                    rows["x"].size for rows in histories.get(stream_id, [])
                )
                _append(
                    service, stream_id, _batch(rng, 5 + seed % 45, start), histories
                )
            elif op == "add" and pool:
                table = pool.pop()
                service.add_tables([table])
                live_tables[table.table_id] = table
            elif op == "remove":
                removable = sorted(live_tables) + sorted(histories)
                if len(removable) <= 1:
                    continue
                victim = removable[seed % len(removable)]
                service.remove_tables([victim])
                live_tables.pop(victim, None)
                histories.pop(victim, None)
            chart = query_charts[seed % len(query_charts)]
            reference = _replay_service(
                FCMModel(stream_model.config), live_tables.values(), histories
            )
            _assert_rankings_match(
                service.query(chart, k=5), reference.query(chart, k=5)
            )
        reference = _replay_service(
            FCMModel(stream_model.config), live_tables.values(), histories
        )
        _assert_stream_equivalent(service, reference, query_charts[:2])

    def test_incremental_segments_byte_identical_to_replay(
        self, stream_model, static_tables
    ):
        """Not just score parity: the composed parent and every sealed
        segment encode to the same bytes as a single-shot replay."""
        rng = np.random.default_rng(7)
        service = _make_service(stream_model)
        service.build(static_tables[:2])
        histories: dict = {}
        for size in (40, 25, 33, 6):
            start = sum(rows["x"].size for rows in histories.get("live", []))
            _append(service, "live", _batch(rng, size, start), histories)
        reference = _replay_service(
            FCMModel(stream_model.config), static_tables[:2], histories
        )
        for seg_id in service.processor.streams["live"]:
            ours = service.scorer.encoded_table(seg_id)
            theirs = reference.scorer.encoded_table(seg_id)
            assert np.array_equal(ours.representations, theirs.representations)
            assert np.array_equal(ours.column_embeddings, theirs.column_embeddings)
        composed_ours = service.scorer.encoded_table("live")
        composed_theirs = reference.scorer.encoded_table("live")
        assert np.array_equal(
            composed_ours.representations, composed_theirs.representations
        )


# --------------------------------------------------------------------------- #
# Worker pool: incremental segment sync, death mid-ingest
# --------------------------------------------------------------------------- #
class TestStreamingWorkerPool:
    def _pooled(self, model, **kw):
        kw.setdefault("query_workers", 2)
        kw.setdefault("worker_timeout", SHARD_TIMEOUT_SECONDS)
        return _make_service(model, **kw)

    def _skip_unless_pool_ran(self, service):
        if service.worker_fallback_reason is not None:
            pytest.skip(
                f"query worker pool unavailable: {service.worker_fallback_reason}"
            )

    def test_appends_sync_to_workers_and_match_replay(
        self, stream_model, static_tables, query_charts
    ):
        pooled = self._pooled(stream_model)
        histories: dict = {}
        try:
            pooled.build(static_tables[:5])
            pooled.query(query_charts[0], k=5)
            self._skip_unless_pool_ran(pooled)
            rng = np.random.default_rng(11)
            for size in (40, 30, 20):
                start = sum(rows["x"].size for rows in histories.get("live", []))
                _append(pooled, "live", _batch(rng, size, start), histories)
            reference = _replay_service(
                FCMModel(stream_model.config), static_tables[:5], histories
            )
            for chart in query_charts:
                for strategy in STRATEGIES:
                    _assert_rankings_match(
                        pooled.query(chart, k=5, strategy=strategy),
                        reference.query(chart, k=5, strategy=strategy),
                    )
            assert pooled.worker_fallback_reason is None
            assert pooled.stats.worker_fallbacks == 0
        finally:
            pooled.close()

    def test_worker_death_mid_ingest_falls_back_and_stays_serving(
        self, stream_model, static_tables, query_charts
    ):
        pooled = self._pooled(stream_model)
        histories: dict = {}
        try:
            pooled.build(static_tables[:4])
            pooled.query(query_charts[0], k=5)
            self._skip_unless_pool_ran(pooled)
            rng = np.random.default_rng(13)
            _append(pooled, "live", _batch(rng, 40, 0), histories)
            # Kill a worker between the append and the next query: the sync
            # for the dirty stream hits a dead pipe, the query falls back
            # in-process and still answers exactly.
            os.kill(pooled.query_pool.worker_pids[0], signal.SIGKILL)
            _append(pooled, "live", _batch(rng, 20, 40), histories)
            reference = _replay_service(
                FCMModel(stream_model.config), static_tables[:4], histories
            )
            result = pooled.query(query_charts[1], k=5)
            _assert_rankings_match(result, reference.query(query_charts[1], k=5))
            assert pooled.worker_fallback_reason is not None
            assert pooled.stats.worker_fallbacks >= 1
            assert pooled.stats.worker_fallback_kind == "failure"
            # Still serving: further appends and queries keep working.
            _append(pooled, "live", _batch(rng, 10, 60), histories)
            reference = _replay_service(
                FCMModel(stream_model.config), static_tables[:4], histories
            )
            _assert_rankings_match(
                pooled.query(query_charts[2], k=5),
                reference.query(query_charts[2], k=5),
            )
        finally:
            pooled.close()


# --------------------------------------------------------------------------- #
# Subscriptions: delivery, bounds, faults, observability
# --------------------------------------------------------------------------- #
class TestSubscriptions:
    def _service_with_stream(self, model, tables, seed=21, rows=40):
        service = _make_service(model)
        service.build(tables)
        rng = np.random.default_rng(seed)
        service.append_rows("live", _batch(rng, rows, 0), roles={"x": "x"})
        return service, rng

    def test_subscription_fires_within_one_batch_of_pattern_onset(
        self, stream_model, static_tables, tiny_fcm_config
    ):
        service, rng = self._service_with_stream(stream_model, static_tables[:3])
        # The planted pattern arrives as rows 64..96 == exactly window 2.
        filler = _batch(rng, 24, 40)
        onset = _batch(rng, 32, 64)
        chart = _pattern_chart(tiny_fcm_config, onset)
        expected = _preview_segment_score(stream_model, chart, onset, 0, 32)
        events_seen = []
        subscription_id = service.subscribe(
            chart,
            k=1,
            threshold=expected - 1e-9,
            callback=events_seen.append,
        )
        quiet = service.append_rows("live", filler)
        onset_result = service.append_rows("live", onset)
        assert onset_result.events_fired >= 1
        events = service.poll(subscription_id)
        fired = [e for e in events if e.segment_id == segment_table_id("live", 2)]
        assert fired, [e.to_dict() for e in events]
        alert = fired[0]
        assert alert.table_id == "live"
        assert alert.score >= expected - 1e-9
        assert alert.score == pytest.approx(expected, abs=dtype_tol(1e-12, 1e-6))
        assert alert.total_rows == 96
        assert quiet.total_rows == 64
        assert any(e.segment_id == alert.segment_id for e in events_seen)
        assert service.poll(subscription_id) == []  # drained

    def test_events_are_bounded_and_drops_are_counted(
        self, stream_model, static_tables
    ):
        service = _make_service(
            stream_model,
            streaming=StreamingConfig(segment_rows=WINDOW, max_pending_events=2),
        )
        service.build(static_tables[:3])
        rng = np.random.default_rng(31)
        service.append_rows("live", _batch(rng, 70, 0), roles={"x": "x"})
        chart = _pattern_chart(
            FCMModel(stream_model.config).config, _batch(rng, 32, 0)
        )
        subscription_id = service.subscribe(chart, k=8, threshold=0.0)
        for i in range(4):
            service.append_rows("live", _batch(rng, 40, 70 + 40 * i))
        stats = service.subscriptions.get(subscription_id).stats
        assert stats.events_dropped > 0
        events = service.poll(subscription_id)
        assert len(events) <= 2
        assert stats.events_delivered >= len(events)

    def test_raising_callback_is_isolated_and_counted(
        self, stream_model, static_tables
    ):
        service, rng = self._service_with_stream(stream_model, static_tables[:3])
        chart = _pattern_chart(
            FCMModel(stream_model.config).config, _batch(rng, 32, 0)
        )

        def explode(event):
            raise RuntimeError("subscriber bug")

        subscription_id = service.subscribe(
            chart, k=2, threshold=0.0, callback=explode
        )
        result = service.append_rows("live", _batch(rng, 40, 40))
        assert result.events_fired >= 1
        stats = service.subscriptions.get(subscription_id).stats
        assert stats.callback_errors >= 1
        # The event still landed in the queue despite the callback dying.
        assert len(service.poll(subscription_id)) >= 1
        # And the service keeps serving.
        service.append_rows("live", _batch(rng, 10, 80))
        assert service.stats.append_batches == 3

    def test_unsubscribe_and_unknown_ids(self, stream_model, static_tables):
        service, rng = self._service_with_stream(stream_model, static_tables[:3])
        chart = _pattern_chart(
            FCMModel(stream_model.config).config, _batch(rng, 32, 0)
        )
        subscription_id = service.subscribe(chart, k=1, threshold=0.5)
        assert subscription_id in service.subscriptions.active
        assert service.unsubscribe(subscription_id) is True
        assert subscription_id not in service.subscriptions.active
        with pytest.raises(KeyError):
            service.poll(subscription_id)
        assert service.unsubscribe("sub-999999") is False  # idempotent
        with pytest.raises(ValueError):
            service.subscribe(chart, k=0)

    def test_snapshot_save_load_with_live_subscriptions(
        self, stream_model, static_tables, tmp_path
    ):
        """Snapshots during live subscriptions: the service keeps firing,
        the restored service streams on with empty-but-usable
        subscriptions (they are deliberately not persisted)."""
        service, rng = self._service_with_stream(stream_model, static_tables[:3])
        onset = _batch(rng, 32, 64)
        chart = _pattern_chart(FCMModel(stream_model.config).config, onset)
        expected = _preview_segment_score(stream_model, chart, onset, 0, 32)
        subscription_id = service.subscribe(chart, k=1, threshold=expected - 1e-9)
        path = service.save_index(tmp_path / "live.npz")
        # Original keeps serving and firing after the save.
        service.append_rows("live", _batch(rng, 24, 40))
        result = service.append_rows("live", onset)
        assert result.events_fired >= 1
        assert len(service.poll(subscription_id)) >= 1

        restored = SearchService.load_index(
            stream_model,
            path,
            ServingConfig(
                lsh_config=LSHConfig(num_bits=6, hamming_radius=1),
                streaming=StreamingConfig(segment_rows=WINDOW),
            ),
        )
        assert restored.subscriptions.active == []
        assert restored.processor.streams["live"] == [
            segment_table_id("live", 0),
            segment_table_id("live", 1),
        ]
        # The restored stream continues from the persisted row count and a
        # fresh subscription fires on the same planted pattern.
        new_sub = restored.subscribe(chart, k=1, threshold=expected - 1e-9)
        restored.append_rows("live", _batch(rng, 24, 40))
        restored_result = restored.append_rows("live", onset)
        assert restored_result.total_rows == 96
        assert restored_result.events_fired >= 1
        assert len(restored.poll(new_sub)) >= 1

    def test_append_trace_and_ingest_metrics(
        self, stream_model, static_tables
    ):
        registry = get_registry()
        rows_before = registry.counter("repro_ingest_rows_total").value()
        batches_before = registry.counter("repro_ingest_batches_total").value()
        service = _make_service(stream_model, tracing=True)
        service.build(static_tables[:3])
        rng = np.random.default_rng(41)
        service.append_rows("live", _batch(rng, 40, 0), roles={"x": "x"})
        chart = _pattern_chart(
            FCMModel(stream_model.config).config, _batch(rng, 32, 0)
        )
        service.subscribe(chart, k=1, threshold=0.0)
        service.append_rows("live", _batch(rng, 20, 40))

        def names(tree):
            return [tree["name"]] + [
                n for child in tree.get("children", []) for n in names(child)
            ]

        trace = service.last_trace
        assert trace["name"] == "append_rows"
        spans = names(trace)
        assert "notify" in spans
        assert "subscription" in spans
        assert registry.counter("repro_ingest_rows_total").value() == rows_before + 60
        assert (
            registry.counter("repro_ingest_batches_total").value()
            == batches_before + 2
        )

    def test_append_stream_rows_requires_processor_support(self, stream_model):
        """The low-level helper validates its inputs on its own."""
        service = _make_service(stream_model)
        service.build([])
        with pytest.raises(ValueError):
            append_stream_rows(
                service.processor, "", {"x": np.arange(4.0)}, segment_rows=WINDOW
            )
        with pytest.raises(ValueError):
            append_stream_rows(
                service.processor, "s", {}, segment_rows=WINDOW
            )
