"""Tests for columns, tables, repository, splits and the synthetic corpus."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Column,
    CorpusConfig,
    DataRepository,
    SplitSizes,
    Table,
    corpus_statistics,
    filter_line_chart_records,
    generate_corpus,
    line_count_bucket,
    sample_num_lines,
    split_corpus,
)


class TestColumn:
    def test_validation(self):
        with pytest.raises(ValueError):
            Column("bad", np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError):
            Column("bad", np.array([]))
        with pytest.raises(ValueError):
            Column("bad", np.array([1.0, np.nan]))

    def test_statistics(self):
        column = Column("c", np.array([1.0, -2.0, 3.0]))
        assert column.min == -2.0 and column.max == 3.0
        assert column.total == pytest.approx(2.0)
        assert column.value_range() == (-2.0, 3.0)

    def test_index_interval_covers_min_and_sum(self):
        column = Column("c", np.array([1.0, 2.0, 3.0]))
        low, high = column.index_interval()
        assert low <= column.min and high >= column.total
        negative = Column("n", np.array([-1.0, -2.0, -3.0]))
        low, high = negative.index_interval()
        assert low <= negative.total  # windowed sums can go below the raw min

    def test_transformations(self):
        column = Column("c", np.arange(10, dtype=float))
        assert list(column.reversed().values) == list(np.arange(10, dtype=float)[::-1])
        left, right = column.partitioned(4)
        assert len(left) == 4 and len(right) == 6
        assert len(column.down_sampled(2)) == 5
        with pytest.raises(ValueError):
            column.partitioned(0)
        with pytest.raises(ValueError):
            column.down_sampled(0)

    def test_equality_and_hash(self):
        a = Column("c", np.array([1.0, 2.0]))
        b = Column("c", np.array([1.0, 2.0]))
        assert a == b and hash(a) == hash(b)
        assert a != Column("c", np.array([1.0, 3.0]))


class TestTable:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            Table("t", [])
        with pytest.raises(ValueError):
            Table("t", [Column("a", np.ones(3)), Column("a", np.ones(3))])
        with pytest.raises(ValueError):
            Table("t", [Column("a", np.ones(3)), Column("b", np.ones(4))])

    def test_accessors(self, simple_table):
        assert simple_table.num_columns == 4
        assert "rising" in simple_table
        assert simple_table["rising"].name == "rising"
        assert simple_table.column_at(0).name == "time"
        with pytest.raises(KeyError):
            simple_table.column("missing")
        assert simple_table.numeric_matrix().shape == (4, simple_table.num_rows)

    def test_select_and_filter_by_range(self, simple_table):
        projected = simple_table.select(["rising", "wave"])
        assert projected.column_names == ["rising", "wave"]
        in_range = simple_table.filter_columns_by_range(0.0, 12.0)
        names = {c.name for c in in_range}
        assert "rising" in names
        narrow = simple_table.filter_columns_by_range(100.0, 200.0, tolerance=0.0)
        assert all(c.max >= 100.0 for c in narrow) or narrow == []

    def test_to_underlying_data(self, simple_table):
        data = simple_table.to_underlying_data(["rising", "wave"], x_column="time")
        assert data.num_lines == 2
        assert len(data[0]) == simple_table.num_rows
        implicit = simple_table.to_underlying_data(["wave"])
        np.testing.assert_allclose(implicit[0].x[:3], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            simple_table.to_underlying_data([])


class TestRepository:
    def test_add_get_remove(self, simple_table):
        repo = DataRepository([simple_table])
        assert len(repo) == 1 and simple_table.table_id in repo
        with pytest.raises(ValueError):
            repo.add(simple_table)
        assert repo.get(simple_table.table_id) is simple_table
        repo.remove(simple_table.table_id)
        assert len(repo) == 0
        with pytest.raises(KeyError):
            repo.get("missing")

    def test_noisy_copies_are_close_but_not_identical(self, simple_table, rng):
        repo = DataRepository([simple_table])
        copies = repo.inject_noisy_copies(simple_table, count=3, rng=rng, exclude_columns=["time"])
        assert len(repo) == 4 and len(copies) == 3
        for copy in copies:
            np.testing.assert_allclose(copy["time"].values, simple_table["time"].values)
            assert not np.allclose(copy["wave"].values, simple_table["wave"].values)
            ratio = copy["rising"].values / simple_table["rising"].values
            assert ratio.min() >= 0.9 - 1e-9 and ratio.max() <= 1.1 + 1e-9

    def test_deduplicate(self, simple_table):
        clone = Table("tbl_clone", [Column(c.name, c.values.copy(), role=c.role) for c in simple_table.columns])
        repo = DataRepository([simple_table, clone])
        removed = repo.deduplicate()
        assert removed == 1 and len(repo) == 1

    def test_summary(self, simple_table):
        repo = DataRepository([simple_table])
        summary = repo.summary()
        assert summary["tables"] == 1
        assert summary["avg_columns"] == 4


class TestCorpus:
    def test_generation_is_deterministic(self):
        a = generate_corpus(CorpusConfig(num_records=10, seed=5))
        b = generate_corpus(CorpusConfig(num_records=10, seed=5))
        assert [r.table.table_id for r in a] == [r.table.table_id for r in b]
        np.testing.assert_allclose(
            a[0].table.numeric_matrix(), b[0].table.numeric_matrix()
        )

    def test_specs_reference_existing_columns(self, small_records):
        for record in small_records:
            for name in record.spec.y_columns:
                assert name in record.table
            if record.spec.x_column:
                assert record.spec.x_column in record.table

    def test_statistics_buckets(self, small_records):
        stats = corpus_statistics(small_records)
        assert stats["total"] == len(small_records)
        assert sum(v for k, v in stats.items() if k != "total") == stats["total"]

    def test_line_count_bucket(self):
        assert line_count_bucket(1) == "1"
        assert line_count_bucket(3) == "2-4"
        assert line_count_bucket(6) == "5-7"
        assert line_count_bucket(9) == ">7"

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_sample_num_lines_in_range(self, seed):
        n = sample_num_lines(np.random.default_rng(seed))
        assert 1 <= n <= 12


class TestSplit:
    def test_split_sizes_and_disjointness(self):
        records = generate_corpus(CorpusConfig(num_records=30, seed=7))
        line_records = filter_line_chart_records(records)
        split = split_corpus(line_records, SplitSizes(train=10, validation=5, test=5), seed=1)
        assert split.sizes == (10, 5, 5)
        ids = [r.table.table_id for part in (split.train, split.validation, split.test) for r in part]
        assert len(ids) == len(set(ids))

    def test_split_validation_errors(self, small_records):
        with pytest.raises(ValueError):
            split_corpus(small_records, SplitSizes(train=len(small_records), validation=5, test=5))
        with pytest.raises(ValueError):
            split_corpus(small_records, SplitSizes(train=1, validation=1, test=0))

    def test_fractional_split(self, small_records):
        split = split_corpus(small_records, SplitSizes(train=0.5, validation=0.2), seed=0)
        assert split.sizes[0] == round(0.5 * len(small_records))
